"""End-of-cycle observers.

The paper's figures are time series sampled once per cycle (fraction of
malicious links, fraction of non-swappable links, ...).  Observers are
the hook that produces them: the engine calls ``on_cycle_end`` after all
exchanges of a cycle have completed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List


class Observer:
    """Base observer; subclasses override the hooks they need."""

    def on_start(self, engine: Any) -> None:
        """Called once before the first cycle runs."""

    def on_cycle_end(self, engine: Any, cycle: int) -> None:
        """Called after every cycle completes."""

    def on_time_sample(self, engine: Any, time_s: float) -> None:
        """Called by the event runtime at its sampling instants.

        The cycle runtime never calls this (its clock only visits
        boundaries, where :meth:`on_cycle_end` already fires); the
        event runtime calls it every ``sample_every_s`` seconds, which
        lets observers see state mid-period — between the activations
        the cycle model would have fused into one atomic step.
        """

    def on_finish(self, engine: Any) -> None:
        """Called once after the last cycle."""


class SeriesObserver(Observer):
    """Records one numeric series per named probe function.

    Each probe is a callable ``engine -> float`` evaluated at the end of
    every ``every``-th cycle.  The collected series are available as
    ``observer.series[name]`` (list of ``(cycle, value)`` pairs).
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[Any], float]],
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self._probes = dict(probes)
        self._every = every
        self.series: Dict[str, List[tuple]] = {name: [] for name in probes}

    def on_cycle_end(self, engine: Any, cycle: int) -> None:
        if cycle % self._every != 0:
            return
        for name, probe in self._probes.items():
            self.series[name].append((cycle, probe(engine)))

    def values(self, name: str) -> List[float]:
        """Just the values of one series, in cycle order."""
        return [value for _, value in self.series[name]]

    def cycles(self, name: str) -> List[int]:
        """Just the sampled cycle numbers of one series."""
        return [cycle for cycle, _ in self.series[name]]

    def export_series(self) -> Dict[str, List[tuple]]:
        """A deep-enough copy of the collected series for checkpointing.

        Tuples are immutable, so copying the lists is sufficient; the
        values keep their exact types (``int`` vs ``float`` matters for
        the bit-exact resume guarantee — renderers format them
        differently).
        """
        return {name: list(pairs) for name, pairs in self.series.items()}

    def restore_series(self, saved: Dict[str, List[tuple]]) -> None:
        """Replace the collected series with a checkpointed snapshot.

        Used on resume: the freshly attached observer adopts the pairs
        recorded before the checkpoint, then keeps appending from the
        resumed cycle, so the finished series equals an unbroken run's.
        """
        self.series = {
            name: [tuple(pair) for pair in pairs]
            for name, pairs in saved.items()
        }


class TimedSeriesObserver(Observer):
    """Wall-clock twin of :class:`SeriesObserver` (event runtime only).

    Records ``(time_s, value)`` pairs at every sampling instant the
    event scheduler announces through :meth:`Observer.on_time_sample`.
    The sampling cadence belongs to the scheduler (``sample_every_s``),
    not the observer — all timed observers of an engine share it.
    """

    def __init__(self, probes: Dict[str, Callable[[Any], float]]) -> None:
        self._probes = dict(probes)
        self.series: Dict[str, List[tuple]] = {name: [] for name in probes}

    def on_time_sample(self, engine: Any, time_s: float) -> None:
        for name, probe in self._probes.items():
            self.series[name].append((time_s, probe(engine)))

    def values(self, name: str) -> List[float]:
        """Just the values of one series, in time order."""
        return [value for _, value in self.series[name]]

    def times(self, name: str) -> List[float]:
        """Just the sampled instants of one series."""
        return [time_s for time_s, _ in self.series[name]]
