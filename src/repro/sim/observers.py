"""End-of-cycle observers.

The paper's figures are time series sampled once per cycle (fraction of
malicious links, fraction of non-swappable links, ...).  Observers are
the hook that produces them: the engine calls ``on_cycle_end`` after all
exchanges of a cycle have completed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List


class Observer:
    """Base observer; subclasses override the hooks they need."""

    def on_start(self, engine: Any) -> None:
        """Called once before the first cycle runs."""

    def on_cycle_end(self, engine: Any, cycle: int) -> None:
        """Called after every cycle completes."""

    def on_finish(self, engine: Any) -> None:
        """Called once after the last cycle."""


class SeriesObserver(Observer):
    """Records one numeric series per named probe function.

    Each probe is a callable ``engine -> float`` evaluated at the end of
    every ``every``-th cycle.  The collected series are available as
    ``observer.series[name]`` (list of ``(cycle, value)`` pairs).
    """

    def __init__(
        self,
        probes: Dict[str, Callable[[Any], float]],
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self._probes = dict(probes)
        self._every = every
        self.series: Dict[str, List[tuple]] = {name: [] for name in probes}

    def on_cycle_end(self, engine: Any, cycle: int) -> None:
        if cycle % self._every != 0:
            return
        for name, probe in self._probes.items():
            self.series[name].append((cycle, probe(engine)))

    def values(self, name: str) -> List[float]:
        """Just the values of one series, in cycle order."""
        return [value for _, value in self.series[name]]

    def cycles(self, name: str) -> List[int]:
        """Just the sampled cycle numbers of one series."""
        return [cycle for cycle, _ in self.series[name]]
