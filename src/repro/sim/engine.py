"""The cycle-driven simulation engine.

One :class:`Engine` owns a complete simulated universe: the key registry,
the clock, the network directory, the event trace, and every protocol
node.  Its ``run`` loop reproduces the PeerNet/PeerSim cycle model used
by the paper: per cycle, every alive node is activated exactly once, in
a freshly shuffled order, and initiates at most one gossip exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.crypto.registry import KeyRegistry
from repro.errors import SimulationError
from repro.sim.channel import DropPolicy
from repro.sim.churn import CRASH, JOIN, LEAVE, ChurnSchedule
from repro.sim.clock import SimClock
from repro.sim.network import Network
from repro.sim.observers import Observer
from repro.sim.rng import RngHub
from repro.sim.trace import EventTrace


@dataclass(frozen=True)
class SimConfig:
    """Engine-level configuration, protocol-agnostic.

    ``period_seconds`` is the gossip period (wall-clock per cycle);
    ``drop_policy`` injects message loss; ``trace`` toggles event
    tracing (cheap, but disable for very large benchmark runs).
    """

    seed: int = 42
    period_seconds: float = 10.0
    drop_policy: DropPolicy = field(default_factory=DropPolicy)
    trace: bool = True
    payload_sizer: Optional[Callable[[Any], int]] = None


class ProtocolNode:
    """Interface every simulated protocol node implements.

    The engine only ever talks to nodes through these five methods, so
    Cyclon, SecureCyclon, adversaries, and any future protocol plug in
    uniformly.
    """

    node_id: Any

    @property
    def is_malicious(self) -> bool:
        """Whether this node belongs to the adversary (for metrics)."""
        return False

    def begin_cycle(self, cycle: int) -> None:
        """Housekeeping at the start of a cycle (ageing, quotas...)."""

    def run_cycle(self, network: Network) -> None:
        """Initiate this cycle's gossip exchange, if any."""

    def receive(self, sender_id: Any, payload: Any) -> Any:
        """Handle one dialogue message and return the reply."""
        raise NotImplementedError

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Handle a one-way message (e.g. a flooded violation proof)."""


class Engine:
    """A complete simulated universe and its run loop."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        churn: Optional[ChurnSchedule] = None,
        join_factory: Optional[Callable[["Engine"], ProtocolNode]] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.rng_hub = RngHub(self.config.seed)
        self.registry = KeyRegistry()
        self.clock = SimClock(period_seconds=self.config.period_seconds)
        self.trace = EventTrace(enabled=self.config.trace)
        self.network = Network(
            rng=self.rng_hub.stream("network"),
            drop_policy=self.config.drop_policy,
            sizer=self.config.payload_sizer,
        )
        self.nodes: Dict[Any, ProtocolNode] = {}
        self._observers: List[Observer] = []
        self._churn = churn or ChurnSchedule()
        self._join_factory = join_factory
        self._order_rng = self.rng_hub.stream("activation-order")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_node(self, node: ProtocolNode) -> None:
        """Attach ``node`` to the universe and the network directory."""
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self.network.attach(node.node_id, node)

    def remove_node(self, node_id: Any) -> None:
        """Remove a node (leave/crash); its ID stays known for metrics."""
        self.nodes.pop(node_id, None)
        self.network.detach(node_id)

    def alive_ids(self) -> List[Any]:
        """Return the ids of all nodes currently attached to the engine."""
        return list(self.nodes)

    @property
    def malicious_ids(self) -> Set[Any]:
        return {nid for nid, node in self.nodes.items() if node.is_malicious}

    @property
    def legit_ids(self) -> Set[Any]:
        return {nid for nid, node in self.nodes.items() if not node.is_malicious}

    def legit_nodes(self) -> List[ProtocolNode]:
        """Return all attached nodes that are not flagged malicious."""
        return [node for node in self.nodes.values() if not node.is_malicious]

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register an observer invoked after every completed cycle."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        if cycles < 0:
            raise SimulationError("cycles must be non-negative")
        for observer in self._observers:
            observer.on_start(self)
        for _ in range(cycles):
            self._run_one_cycle()
        for observer in self._observers:
            observer.on_finish(self)

    def _run_one_cycle(self) -> None:
        cycle = self.clock.cycle
        self._apply_churn(cycle)

        order = self.alive_ids()
        self._order_rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is not None:
                node.begin_cycle(cycle)

        self._order_rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is not None:
                node.run_cycle(self.network)

        for observer in self._observers:
            observer.on_cycle_end(self, cycle)
        self.clock.advance()

    def _apply_churn(self, cycle: int) -> None:
        for event in self._churn.events_at(cycle):
            if event.action == JOIN:
                if self._join_factory is None:
                    raise SimulationError(
                        "churn schedule contains joins but no join_factory "
                        "was provided"
                    )
                node = self._join_factory(self)
                self.add_node(node)
                self.trace.emit(cycle, "churn.join", node=node.node_id)
            elif event.action in (LEAVE, CRASH):
                if event.node_id in self.nodes:
                    self.remove_node(event.node_id)
                    self.trace.emit(
                        cycle, f"churn.{event.action}", node=event.node_id
                    )
