"""The simulation engine: universe state plus a pluggable runtime.

One :class:`Engine` owns a complete simulated universe: the key registry,
the clock, the network directory, the event trace, and every protocol
node.  *How* that universe advances belongs to a
:class:`~repro.sim.scheduler.Scheduler`: the default
:class:`~repro.sim.scheduler.CycleScheduler` reproduces the PeerNet/
PeerSim cycle model used by the paper (per cycle, every alive node is
activated exactly once, in a freshly shuffled order, and initiates at
most one gossip exchange), while the
:class:`~repro.sim.scheduler.EventScheduler` drives the same universe
through a latency-aware event queue.  ``Engine.run`` still counts in
cycles either way, so every experiment and metric works unchanged under
both runtimes.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set

from repro.crypto.registry import KeyRegistry
from repro.errors import SimulationError
from repro.sim.channel import DropPolicy
from repro.sim.churn import CRASH, JOIN, LEAVE, ChurnSchedule
from repro.sim.clock import SimClock
from repro.sim.network import Network
from repro.sim.observers import Observer
from repro.sim.rng import RngHub
from repro.sim.scheduler import CycleScheduler, Scheduler
from repro.sim.trace import EventTrace
from repro.sim.transport import make_transport

#: Run-loop interception point for the ops plane.  ``None`` in normal
#: operation; :func:`repro.ops.checkpoint.split_runs` installs a
#: callable ``hook(engine, cycles)`` here that drives the scheduler in
#: place of the plain ``scheduler.run`` call — e.g. run half the
#: cycles, save a checkpoint, run the rest.  Module-global (mirroring
#: ``repro.sim.shardcoord._ACTIVE``) so the experiments CLI can flip a
#: whole run's engines without threading a parameter through every
#: builder.
_RUN_HOOK: Optional[Callable[["Engine", int], None]] = None


@dataclass(frozen=True)
class SimConfig:
    """Engine-level configuration, protocol-agnostic.

    ``period_seconds`` is the gossip period (wall-clock per cycle);
    ``drop_policy`` injects message loss; ``trace`` toggles event
    tracing (cheap, but disable for very large benchmark runs).
    ``gc_generation0_threshold`` raises the cyclic collector's young-
    generation threshold for the duration of :meth:`Engine.run` — the
    simulation allocates tens of thousands of short-lived objects per
    cycle and the default threshold (700) makes the collector re-scan
    long-lived caches so often that it costs ~25% of the run time.
    The previous thresholds are restored when ``run`` returns.  Set to
    ``None`` to leave the collector untouched.

    ``peer_health`` opts into per-peer wire-health scoring and
    quarantine (:mod:`repro.sim.peerhealth`): pass a
    :class:`~repro.sim.peerhealth.HealthPolicy` (a fresh ledger is
    built from it), an already-built
    :class:`~repro.sim.peerhealth.PeerHealthLedger`, or ``True`` for
    the default policy.  ``None`` (the default) leaves the ledger out
    entirely — receive boundaries still convert undecodable frames to
    drops, but nothing is scored and nothing is ever quarantined.

    ``transport`` selects how payloads cross the simulated network: a
    mode name (``"object"``/``"wire"``), an already-built
    :class:`~repro.sim.transport.Transport`, or ``None`` — resolved
    through the ``REPRO_TRANSPORT`` environment variable with the
    classic shared-object semantics as the default.  The scenario
    builders forward the protocol configs' ``transport=`` knob here
    when this field was left unset.  In wire mode every dialogue leg
    and push is framed through the binary codec and traffic accounting
    switches from the budgeted ``payload_sizer`` to measured frame
    sizes (see :mod:`repro.sim.transport`).
    """

    seed: int = 42
    period_seconds: float = 10.0
    drop_policy: DropPolicy = field(default_factory=DropPolicy)
    trace: bool = True
    payload_sizer: Optional[Callable[[Any], int]] = None
    gc_generation0_threshold: Optional[int] = 400_000
    transport: Optional[Any] = None
    peer_health: Optional[Any] = None


class ProtocolNode:
    """Interface every simulated protocol node implements.

    The engine only ever talks to nodes through these five methods, so
    Cyclon, SecureCyclon, adversaries, and any future protocol plug in
    uniformly.
    """

    node_id: Any

    @property
    def is_malicious(self) -> bool:
        """Whether this node belongs to the adversary (for metrics)."""
        return False

    def begin_cycle(self, cycle: int) -> None:
        """Housekeeping at the start of a cycle (ageing, quotas...)."""

    def run_cycle(self, network: Network) -> None:
        """Initiate this cycle's gossip exchange, if any."""

    def receive(self, sender_id: Any, payload: Any) -> Any:
        """Handle one dialogue message and return the reply."""
        raise NotImplementedError

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Handle a one-way message (e.g. a flooded violation proof)."""


class Engine:
    """A complete simulated universe and its run loop."""

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        churn: Optional[ChurnSchedule] = None,
        join_factory: Optional[Callable[["Engine"], ProtocolNode]] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.scheduler = scheduler or CycleScheduler()
        self.rng_hub = RngHub(self.config.seed)
        self.registry = KeyRegistry()
        self.clock = SimClock(period_seconds=self.config.period_seconds)
        self.trace = EventTrace(enabled=self.config.trace)
        self.network = Network(
            rng=self.rng_hub.stream("network"),
            drop_policy=self.config.drop_policy,
            sizer=self.config.payload_sizer,
            transport=make_transport(self.config.transport),
            health=self._resolve_peer_health(self.config.peer_health),
        )
        self.nodes: Dict[Any, ProtocolNode] = {}
        self._observers: List[Observer] = []
        self._churn = churn or ChurnSchedule()
        self._join_factory = join_factory
        self._order_rng = self.rng_hub.stream("activation-order")
        # Membership caches: metrics probes ask for the malicious/legit
        # id sets every cycle, and the run loop needs the alive-id list
        # twice per cycle.  All three are maintained incrementally and
        # invalidated on add/remove instead of re-scanning the node
        # dict on every access.  ``_alive_list`` mirrors the insertion
        # order of ``self.nodes`` exactly, so the shuffled activation
        # order consumes the RNG identically to a fresh ``list(nodes)``.
        self._alive_list: List[Any] = []
        self._malicious_cache: Optional[Set[Any]] = None
        self._legit_cache: Optional[Set[Any]] = None
        self._order_buffer: List[Any] = []
        # Engine-wide batched-verification plan (repro.crypto.batch):
        # created lazily on first request and shared by every node the
        # scenario builder binds it to, so each distinct ownership
        # chain is verified once network-wide per cycle.  Stays None on
        # sequential-verification runs; the schedulers reset it at
        # every cycle boundary when it exists.
        self._verification_plan: Optional[Any] = None
        # Optional repro.ops.checkpoint.CheckpointPolicy: both
        # schedulers call ``after_cycle`` on it at every completed
        # cycle boundary (every-N-cycles and on-demand checkpoints).
        self.checkpoint_policy: Optional[Any] = None

    @staticmethod
    def _resolve_peer_health(spec: Optional[Any]) -> Optional[Any]:
        """Resolve ``SimConfig.peer_health`` into a ledger (or ``None``).

        Imported lazily for the same layering reason as the
        verification plan: accepting a policy here must not put
        :mod:`repro.sim.peerhealth` on the import path of runs that
        never use it.
        """
        if spec is None:
            return None
        from repro.sim.peerhealth import HealthPolicy, PeerHealthLedger

        if isinstance(spec, PeerHealthLedger):
            return spec
        if isinstance(spec, HealthPolicy):
            return PeerHealthLedger(spec)
        if spec is True:
            return PeerHealthLedger()
        raise SimulationError(
            "peer_health must be None, True, a HealthPolicy, or a "
            f"PeerHealthLedger; got {spec!r}"
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_node(self, node: ProtocolNode) -> None:
        """Attach ``node`` to the universe and the network directory.

        Nodes configured for batched verification (they carry a private
        plan) are rebound to the engine-wide shared plan here, so every
        construction site — scenario builders, churn joiners, ad-hoc
        experiments — gets network-wide verdict sharing without its own
        wiring.  Only nodes verifying against this engine's registry
        qualify; anything else keeps its private plan.
        """
        if node.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {node.node_id!r}")
        if (
            getattr(node, "_vplan", None) is not None
            and getattr(node, "registry", None) is self.registry
        ):
            node.bind_verification_plan(self.verification_plan())
        self.nodes[node.node_id] = node
        self.network.attach(node.node_id, node)
        self._alive_list.append(node.node_id)
        self._malicious_cache = None
        self._legit_cache = None

    def remove_node(self, node_id: Any) -> None:
        """Remove a node (leave/crash); its ID stays known for metrics."""
        if self.nodes.pop(node_id, None) is not None:
            self._alive_list.remove(node_id)
            self._malicious_cache = None
            self._legit_cache = None
        self.network.detach(node_id)

    def alive_ids(self) -> List[Any]:
        """Return the ids of all nodes currently attached to the engine."""
        return list(self._alive_list)

    @property
    def malicious_ids(self) -> Set[Any]:
        cached = self._malicious_cache
        if cached is None:
            cached = {
                nid for nid, node in self.nodes.items() if node.is_malicious
            }
            self._malicious_cache = cached
        return cached

    @property
    def legit_ids(self) -> Set[Any]:
        cached = self._legit_cache
        if cached is None:
            cached = {
                nid for nid, node in self.nodes.items() if not node.is_malicious
            }
            self._legit_cache = cached
        return cached

    def legit_nodes(self) -> List[ProtocolNode]:
        """Return all attached nodes that are not flagged malicious."""
        return [node for node in self.nodes.values() if not node.is_malicious]

    # ------------------------------------------------------------------
    # batched verification
    # ------------------------------------------------------------------

    def verification_plan(self):
        """The engine-wide shared verification plan, created on demand.

        Imported lazily: the plan lives in the crypto/descriptor layer,
        which transitively imports this module.
        """
        if self._verification_plan is None:
            from repro.crypto.batch import VerificationPlan

            self._verification_plan = VerificationPlan(self.registry)
        return self._verification_plan

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register an observer invoked after every completed cycle."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    def use_scheduler(self, scheduler: Scheduler) -> None:
        """Swap the runtime that drives this universe.

        Switch *between* ``run`` calls, not during one.  Switching from
        the event runtime mid-simulation leaves its in-flight messages
        undelivered (they live in the scheduler's queue).
        """
        # Unbind any event-runtime hooks; an event scheduler re-installs
        # its own on the next run, and the cycle runtime needs the
        # synchronous (hook-free) network paths.  The *message*
        # transport is engine state, not a runtime hook, and survives
        # scheduler swaps.
        self.network.set_link_timing(None)
        self.network.use_event_transport(None)
        self.scheduler = scheduler

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles.

        The unit stays *cycles* under every runtime: the cycle scheduler
        executes that many lock-step rounds, the event scheduler runs
        its queue until the wall clock reaches ``cycles`` gossip
        periods.
        """
        if cycles < 0:
            raise SimulationError("cycles must be non-negative")
        with self._tuned_gc():
            for observer in self._observers:
                observer.on_start(self)
            hook = _RUN_HOOK
            if hook is not None:
                hook(self, cycles)
            else:
                self.scheduler.run(self, cycles)
            for observer in self._observers:
                observer.on_finish(self)

    def checkpoint(self, path: Any) -> Any:
        """Serialise this universe's full state to a checkpoint file.

        See :mod:`repro.ops.checkpoint` for the format and the
        bit-exact resume contract.  Imported lazily: the ops plane
        sits above the engine and must not be on the import path of
        runs that never checkpoint.
        """
        from repro.ops.checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    def resume(self, path: Any) -> Any:
        """Restore state saved by :meth:`checkpoint` into this engine.

        The engine must be a freshly built twin of the checkpointed
        one (same seed, same scenario builder); restore overlays the
        mutated state — views, caches, blacklists, RNG streams, the
        clock — on top, after which ``run`` continues exactly where
        the checkpointed run left off.
        """
        from repro.ops.checkpoint import restore_checkpoint

        return restore_checkpoint(self, path)

    @contextmanager
    def _tuned_gc(self) -> Iterator[None]:
        """Scope the raised gen-0 GC threshold to one ``run`` call.

        The ``finally`` matters: an observer or protocol exception must
        not leak a 400k gen-0 threshold into the caller's process.
        """
        threshold0 = self.config.gc_generation0_threshold
        previous_thresholds = None
        if threshold0 is not None and gc.isenabled():
            previous_thresholds = gc.get_threshold()
            gc.set_threshold(threshold0, *previous_thresholds[1:])
        try:
            yield
        finally:
            if previous_thresholds is not None:
                gc.set_threshold(*previous_thresholds)

    # ------------------------------------------------------------------
    # churn (invoked by schedulers)
    # ------------------------------------------------------------------

    def _apply_churn(self, cycle: int) -> None:
        for event in self._churn.events_at(cycle):
            self._apply_churn_event(event, cycle)

    def _apply_churn_event(self, event: Any, cycle: int) -> None:
        """Execute one churn event (cycle-based or timed)."""
        if event.action == JOIN:
            if self._join_factory is None:
                raise SimulationError(
                    "churn schedule contains joins but no join_factory "
                    "was provided"
                )
            node = self._join_factory(self)
            self.add_node(node)
            self.trace.emit(cycle, "churn.join", node=node.node_id)
        elif event.action in (LEAVE, CRASH):
            if event.node_id in self.nodes:
                self.remove_node(event.node_id)
                self.trace.emit(
                    cycle, f"churn.{event.action}", node=event.node_id
                )
