"""Synchronous request/response channels with message-loss injection.

A gossip exchange is a short dialogue between an initiator and a partner.
The paper's protocols care about *partial* failures: a message may be
lost after the partner has already processed the previous one, leaving
the two views asymmetric (§V-A case 2).  :class:`Channel` therefore
distinguishes, on a drop, whether the request was delivered before the
failure — callers use this to decide whether a descriptor they sent must
be considered spent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ChannelDropped


@dataclass(frozen=True)
class DropPolicy:
    """Probabilities of losing a message in each direction.

    ``request_loss`` applies to initiator→partner messages and
    ``reply_loss`` to partner→initiator replies.  Both default to zero,
    matching the paper's evaluation setting where losses come from the
    adversary rather than the network.
    """

    request_loss: float = 0.0
    reply_loss: float = 0.0

    def __post_init__(self) -> None:
        for name in ("request_loss", "reply_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


class MessageDropped(ChannelDropped):
    """A message was lost in transit.

    ``delivered`` tells the sender whether the remote side processed the
    request before the failure (i.e. only the reply was lost).
    """

    def __init__(self, direction: str, delivered: bool) -> None:
        super().__init__(f"message dropped ({direction})")
        self.direction = direction
        self.delivered = delivered


class Channel:
    """One dialogue between an initiator and a partner node.

    ``deliver`` is a callable that hands a payload to the remote node and
    returns its reply; the engine wires it to the partner's ``receive``
    method.  The channel tracks message and byte counts so experiments
    can report network costs (paper §VI-A).
    """

    def __init__(
        self,
        initiator_id: Any,
        partner_id: Any,
        deliver: Callable[[Any], Any],
        rng,
        policy: Optional[DropPolicy] = None,
        sizer: Optional[Callable[[Any], int]] = None,
        stats: Optional[Any] = None,
    ) -> None:
        self.initiator_id = initiator_id
        self.partner_id = partner_id
        self._deliver = deliver
        self._rng = rng
        self._policy = policy or DropPolicy()
        # Loss probabilities hoisted out of the per-message path (the
        # policy is immutable for the channel's lifetime).
        self._request_loss = self._policy.request_loss
        self._reply_loss = self._policy.reply_loss
        self._sizer = sizer
        self._stats = stats
        self.requests_sent = 0
        self.replies_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    def request(self, payload: Any) -> Any:
        """Send ``payload`` and wait for the partner's reply.

        Raises :class:`MessageDropped` if either direction loses the
        message; ``delivered`` on the exception says whether the partner
        processed the request.
        """
        self.requests_sent += 1
        if self._sizer is not None:
            size = self._sizer(payload)
            self.bytes_sent += size
            if self._stats is not None:
                self._stats.record_dialogue_traffic(sent=size)
        if self._rng.random() < self._request_loss:
            raise MessageDropped("request", delivered=False)
        reply = self._deliver(payload)
        if self._rng.random() < self._reply_loss:
            raise MessageDropped("reply", delivered=True)
        self.replies_received += 1
        if self._sizer is not None and reply is not None:
            size = self._sizer(reply)
            self.bytes_received += size
            if self._stats is not None:
                self._stats.record_dialogue_traffic(received=size)
        return reply
