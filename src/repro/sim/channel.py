"""Synchronous request/response channels with message-loss injection.

A gossip exchange is a short dialogue between an initiator and a partner.
The paper's protocols care about *partial* failures: a message may be
lost after the partner has already processed the previous one, leaving
the two views asymmetric (§V-A case 2).  :class:`Channel` therefore
distinguishes, on a drop, whether the request was delivered before the
failure — callers use this to decide whether a descriptor they sent must
be considered spent.

Under the event-driven runtime the same asymmetry arises from *time*
instead of loss: each message leg is priced by a
:class:`~repro.sim.latency.LinkTiming` and a round trip that exceeds the
dialogue timeout raises :class:`MessageTimeout` — a subclass of
:class:`MessageDropped`, because to the protocol a too-late reply and a
lost reply are the same partial failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ChannelDropped, CodecError, FrameOversizeError
from repro.sim.transport import DROPPED, ObjectTransport, Transport


@dataclass(frozen=True)
class DropPolicy:
    """Probabilities of losing a message in each direction.

    ``request_loss`` applies to initiator→partner messages and
    ``reply_loss`` to partner→initiator replies.  Both default to zero,
    matching the paper's evaluation setting where losses come from the
    adversary rather than the network.

    ``burst_length`` switches on correlated (bursty) loss: after any
    drop, the loss probability of the next ``burst_length`` messages is
    multiplied by ``burst_factor`` (capped at 1.0), modelling the
    real-world pattern where congestion events cluster drops together.
    A drop during a burst re-arms the full burst window.  The burst
    state is shared per network, so bursts correlate across links the
    way a congested backbone does.
    """

    request_loss: float = 0.0
    reply_loss: float = 0.0
    burst_length: int = 0
    burst_factor: float = 2.0

    def __post_init__(self) -> None:
        for name in ("request_loss", "reply_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.burst_length < 0:
            raise ValueError("burst_length must be non-negative")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1.0")


class BurstState:
    """Mutable burst-loss bookkeeping shared by all channels of a network.

    Kept out of the (frozen, shareable) :class:`DropPolicy` so policy
    objects stay value-like.  ``remaining`` counts how many upcoming
    messages still fall inside the current burst window.
    """

    __slots__ = ("length", "factor", "remaining")

    def __init__(self, policy: DropPolicy) -> None:
        self.length = policy.burst_length
        self.factor = policy.burst_factor
        self.remaining = 0

    def effective(self, base_loss: float) -> float:
        """Loss probability for the next message, consuming burst budget."""
        if self.remaining <= 0:
            return base_loss
        self.remaining -= 1
        return min(1.0, base_loss * self.factor)

    def on_drop(self) -> None:
        """A drop happened: (re-)arm the burst window."""
        self.remaining = self.length


class MessageDropped(ChannelDropped):
    """A message was lost in transit.

    ``delivered`` tells the sender whether the remote side processed the
    request before the failure (i.e. only the reply was lost).
    """

    def __init__(self, direction: str, delivered: bool) -> None:
        super().__init__(f"message dropped ({direction})")
        self.direction = direction
        self.delivered = delivered


class MessageTimeout(MessageDropped):
    """The initiator gave up waiting for this round trip.

    Subclasses :class:`MessageDropped` because the protocol-visible
    outcome is identical to a loss in the same direction: ``delivered``
    says whether the request leg arrived before the deadline (if it did,
    the partner processed the message and the §V-A case-2 asymmetry
    applies — anything the initiator sent must be considered spent).
    ``elapsed_s`` is the virtual time the failed round trip consumed.
    """

    def __init__(self, direction: str, delivered: bool, elapsed_s: float) -> None:
        ChannelDropped.__init__(
            self, f"message timed out ({direction}, {elapsed_s:.3f}s)"
        )
        self.direction = direction
        self.delivered = delivered
        self.elapsed_s = elapsed_s


class MessageUndecodable(MessageDropped):
    """The frame arrived but its bytes could not be decoded.

    The graceful-degradation outcome of a malformed frame: instead of
    the receiver's :class:`~repro.errors.CodecError` escaping the
    receive path (which would abort the initiator's whole cycle), the
    channel converts it into this :class:`MessageDropped`-family
    failure — protocol code already handles those.  ``delivered``
    keeps the §V-A asymmetry: ``False`` for a garbled request (the
    partner never processed anything), ``True`` for a garbled reply
    (the partner did, so anything the initiator sent is spent).
    ``oversize`` distinguishes frames rejected by the size ceiling
    (one cheap length check) from frames that failed parsing.

    Deliberately *not* a :class:`MessageTimeout`: retry policies
    re-attempt timeouts, and a frame its own sender garbled is not
    owed a retry.
    """

    def __init__(
        self, direction: str, delivered: bool, oversize: bool = False
    ) -> None:
        ChannelDropped.__init__(self, f"message undecodable ({direction})")
        self.direction = direction
        self.delivered = delivered
        self.oversize = oversize


class Channel:
    """One dialogue between an initiator and a partner node.

    ``deliver`` is a callable that hands a payload to the remote node and
    returns its reply; the engine wires it to the partner's ``receive``
    method.  The channel tracks message and byte counts so experiments
    can report network costs (paper §VI-A).

    ``timing`` (a :class:`~repro.sim.latency.LinkTiming`, event runtime
    only) prices every leg and enforces the dialogue timeout;
    ``burst_state`` (shared per network) correlates drops when the drop
    policy's burst mode is on.  Both default to ``None``, in which case
    the channel behaves — including its RNG consumption — exactly like
    the classic instantaneous channel.

    ``transport`` (a :class:`~repro.sim.transport.Transport`) decides
    how payloads cross each leg: the default
    :class:`~repro.sim.transport.ObjectTransport` passes the sender's
    objects by reference and prices messages with the budgeted
    ``sizer``; a :class:`~repro.sim.transport.WireTransport` frames
    every leg to bytes, hands the receiver freshly decoded objects, and
    switches both byte counters to *measured* frame sizes.  Transports
    consume no randomness, so the RNG streams are identical either way.
    """

    def __init__(
        self,
        initiator_id: Any,
        partner_id: Any,
        deliver: Callable[[Any], Any],
        rng,
        policy: Optional[DropPolicy] = None,
        sizer: Optional[Callable[[Any], int]] = None,
        stats: Optional[Any] = None,
        timing: Optional[Any] = None,
        burst_state: Optional[BurstState] = None,
        transport: Optional[Transport] = None,
        faults: Optional[Any] = None,
        health: Optional[Any] = None,
    ) -> None:
        self.initiator_id = initiator_id
        self.partner_id = partner_id
        self._deliver = deliver
        self._rng = rng
        self._transport = transport or ObjectTransport()
        self._policy = policy or DropPolicy()
        # Loss probabilities hoisted out of the per-message path (the
        # policy is immutable for the channel's lifetime).
        self._request_loss = self._policy.request_loss
        self._reply_loss = self._policy.reply_loss
        self._sizer = sizer
        self._stats = stats
        self._timing = timing
        self._burst = burst_state
        # Wire-plane fault injection and per-peer health scoring, both
        # installed network-wide (repro.sim.transport.FaultInjector /
        # repro.sim.peerhealth.PeerHealthLedger).  ``None`` keeps the
        # classic channel, including its RNG consumption, untouched.
        self._faults = faults
        self._health = health
        self.requests_sent = 0
        self.replies_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        # Virtual time consumed by this dialogue's legs — a diagnostic
        # statistic (like the byte counters above), not fed back into
        # the event clock: dialogues do not delay their node's next
        # activation timer.
        self.elapsed_s = 0.0

    def _spend_time(self, seconds: float) -> None:
        """Account virtual time one round trip consumed (event runtime).

        Accumulated per dialogue (``elapsed_s``) and network-wide
        (``Network.dialogue_seconds``) so experiments can price the
        *waiting* an adversary inflicts — a stalled reply that lands
        just inside the deadline burns almost a full timeout budget
        without ever registering as a failure.
        """
        self.elapsed_s += seconds
        if self._stats is not None:
            self._stats.record_dialogue_time(seconds)

    def _loses(self, base_loss: float) -> bool:
        """Draw the loss decision for one message, burst-aware.

        Exactly one RNG draw per message, burst or not — the classic
        channel drew unconditionally, and bit-for-bit equivalence of the
        cycle runtime depends on consuming its streams identically.
        """
        burst = self._burst
        loss = base_loss if burst is None else burst.effective(base_loss)
        if self._rng.random() < loss:
            if burst is not None:
                burst.on_drop()
            return True
        return False

    def request(self, payload: Any) -> Any:
        """Send ``payload`` and wait for the partner's reply.

        The configured transport encodes the payload once at the sender
        (a lost message is still serialised — and in wire mode still
        billed — before the network loses it) and decodes it for the
        partner only when the request leg actually arrives.  Raises
        :class:`MessageDropped` if either direction loses the message,
        or :class:`MessageTimeout` if latency pushes the round trip
        past the dialogue timeout; ``delivered`` on the exception says
        whether the partner processed the request.
        """
        self.requests_sent += 1
        transport = self._transport
        wire = transport.encode(payload)
        faults = self._faults
        fault_dropped = False
        if faults is not None:
            shaped = faults.apply(
                wire, self.initiator_id, self.partner_id, "request"
            )
            if shaped is DROPPED:
                fault_dropped = True
            else:
                wire = shaped
        size = transport.wire_size(wire)
        if size is None and self._sizer is not None:
            size = self._sizer(payload)
        if size is not None:
            self.bytes_sent += size
            if self._stats is not None:
                self._stats.record_dialogue_traffic(sent=size)
            if self._health is not None:
                self._health.note_sent(
                    self.initiator_id, self.partner_id, size
                )
        timing = self._timing
        # The honest loss draw always happens first, fault or no fault:
        # the fault plane runs on its own RNG stream and must not shift
        # how this channel consumes the shared network stream.
        if self._loses(self._request_loss) or fault_dropped:
            # In a timed network the initiator only *learns* about the
            # loss by waiting out its whole patience: observationally
            # the failure IS a timeout, so it is charged and raised as
            # one (and is therefore retryable, like any timeout — the
            # node must not branch on drop-vs-late information it could
            # never observe).  Without a timeout the classic drop
            # surfaces unchanged.
            if timing is not None and timing.timeout_s is not None:
                timeout_s = timing.timeout_s
                self._spend_time(timeout_s)
                raise MessageTimeout(
                    "request", delivered=False, elapsed_s=timeout_s
                )
            raise MessageDropped("request", delivered=False)
        request_s = 0.0
        if timing is not None:
            request_s = timing.sample(
                self.initiator_id, self.partner_id, leg="request"
            )
            timeout_s = timing.timeout_s
            if timeout_s is not None and request_s > timeout_s:
                # The request is still in flight when the initiator
                # gives up; the partner never acts on it.
                self._spend_time(timeout_s)
                raise MessageTimeout(
                    "request", delivered=False, elapsed_s=timeout_s
                )
        reply = self._deliver(self._decode_inbound(wire, "request", timing))
        reply_wire = None
        reply_size = None
        reply_fault_dropped = False
        if reply is not None:
            reply_wire = transport.encode(reply)
            if faults is not None:
                shaped = faults.apply(
                    reply_wire, self.partner_id, self.initiator_id, "reply"
                )
                if shaped is DROPPED:
                    reply_fault_dropped = True
                else:
                    reply_wire = shaped
            reply_size = transport.wire_size(reply_wire)
            if reply_size is not None:
                # Wire mode bills the reply frame here, at partner-send
                # time — symmetric with the request leg and with
                # pushes: the partner serialised and transmitted the
                # frame whether or not the network then loses it or
                # latency voids it.  (Object mode keeps its historical
                # semantics: the budgeted sizer below prices only
                # replies that actually survive.)
                self.bytes_received += reply_size
                if self._stats is not None:
                    self._stats.record_dialogue_traffic(received=reply_size)
                if self._health is not None:
                    self._health.note_sent(
                        self.partner_id, self.initiator_id, reply_size
                    )
        if self._loses(self._reply_loss) or reply_fault_dropped:
            # Same unification as a lost request: with a timeout
            # configured the missing reply is experienced as (and
            # raised as) a timeout, full patience charged.
            if timing is not None and timing.timeout_s is not None:
                timeout_s = timing.timeout_s
                self._spend_time(timeout_s)
                if self._health is not None:
                    self._health.record_timeout(self.partner_id)
                raise MessageTimeout(
                    "reply", delivered=True, elapsed_s=timeout_s
                )
            raise MessageDropped("reply", delivered=True)
        if timing is not None:
            reply_s = timing.sample(
                self.partner_id, self.initiator_id, leg="reply"
            )
            round_trip_s = request_s + reply_s
            timeout_s = timing.timeout_s
            if timeout_s is not None and round_trip_s > timeout_s:
                # §V-A case 2 by timing: the partner processed the
                # request but the reply arrives too late to matter.
                self._spend_time(timeout_s)
                if self._health is not None:
                    self._health.record_timeout(self.partner_id)
                raise MessageTimeout(
                    "reply", delivered=True, elapsed_s=timeout_s
                )
            self._spend_time(round_trip_s)
        self.replies_received += 1
        if reply is not None:
            # Decode only for replies that actually arrive; the frame
            # itself was billed above.  Object mode (reply_size None)
            # prices delivered replies with the budgeted sizer, exactly
            # as the pre-transport channel did.
            if reply_size is not None:
                reply = self._decode_inbound(reply_wire, "reply", timing)
            elif self._sizer is not None:
                size = self._sizer(reply)
                self.bytes_received += size
                if self._stats is not None:
                    self._stats.record_dialogue_traffic(received=size)
        return reply

    def _decode_inbound(self, wire: Any, direction: str, timing: Any) -> Any:
        """Decode one arriving frame; malformed bytes degrade, not crash.

        This is the receive boundary the fault subsystem exists for: a
        frame that fails to decode is scored against its sender on the
        health ledger, counted network-wide, and surfaced to the
        initiator as :class:`MessageUndecodable` — a
        :class:`MessageDropped`-family outcome the protocol already
        survives — never as a raw :class:`~repro.errors.CodecError`
        escaping the engine loop.  When a dialogue timeout is
        configured the initiator is charged full patience, because
        that is how long it takes to *observe* that nothing valid came
        back.
        """
        health = self._health
        peer = self.initiator_id if direction == "request" else self.partner_id
        if health is not None:
            scanned = self._transport.wire_size(wire)
            if scanned is not None:
                health.note_scanned(peer, scanned)
        try:
            return self._transport.decode(wire)
        except CodecError as exc:
            oversize = isinstance(exc, FrameOversizeError)
            if health is not None:
                if oversize:
                    health.record_oversize(peer)
                else:
                    health.record_decode_failure(peer)
            if self._stats is not None:
                self._stats.record_undecodable()
            if timing is not None and timing.timeout_s is not None:
                self._spend_time(timing.timeout_s)
            raise MessageUndecodable(
                direction,
                delivered=(direction == "reply"),
                oversize=oversize,
            ) from exc
