"""Per-link message latency models for the event-driven runtime.

The paper's evaluation inherits PeerNet/PeerSim's lock-step cycle model,
where message transmission is instantaneous and every exchange is atomic
within its cycle.  Real deployments are nothing like that: latency is
heterogeneous across links, heavy-tailed within a link, and a reply that
arrives after the initiator's patience ran out is indistinguishable from
a lost reply — which is exactly the §V-A case-2 partial failure.

A :class:`LatencyModel` answers one question — how long does *this*
message from ``src`` to ``dst`` take? — and the event scheduler samples
it once per message leg.  Four shapes cover the scenarios the ROADMAP
asks for:

* :class:`ConstantLatency` — every leg takes the same time; the control
  condition (zero keeps the event runtime equivalent to the cycle one);
* :class:`UniformLatency` — bounded symmetric spread;
* :class:`LognormalLatency` — the classic heavy-tailed internet RTT
  shape: most legs fast, a long tail of stragglers;
* :class:`TwoClusterLatency` — a WAN/LAN topology: nodes live in one of
  two sites, intra-site legs are fast, cross-site legs are slow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import SimulationError


class LatencyModel:
    """Interface: one-way message latency for a (src, dst) leg."""

    def sample(self, rng, src: Any = None, dst: Any = None) -> float:
        """Seconds this leg takes; must be >= 0."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Every leg takes exactly ``delay_s`` seconds."""

    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise SimulationError("latency must be non-negative")

    def sample(self, rng, src: Any = None, dst: Any = None) -> float:
        return self.delay_s


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Legs take Uniform(``low_s``, ``high_s``) seconds."""

    low_s: float
    high_s: float

    def __post_init__(self) -> None:
        if self.low_s < 0 or self.high_s < self.low_s:
            raise SimulationError("need 0 <= low_s <= high_s")

    def sample(self, rng, src: Any = None, dst: Any = None) -> float:
        return rng.uniform(self.low_s, self.high_s)


@dataclass(frozen=True)
class LognormalLatency(LatencyModel):
    """Heavy-tailed legs: ``exp(N(ln(median_s), sigma))`` seconds.

    ``median_s`` is the median leg latency (the lognormal's scale) and
    ``sigma`` the shape; ``sigma`` around 0.5 gives a realistic internet
    tail where p99 is ~3x the median.
    """

    median_s: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise SimulationError("median latency must be positive")
        if self.sigma < 0:
            raise SimulationError("sigma must be non-negative")

    def sample(self, rng, src: Any = None, dst: Any = None) -> float:
        if self.sigma == 0:
            return self.median_s
        return rng.lognormvariate(math.log(self.median_s), self.sigma)


@dataclass
class TwoClusterLatency(LatencyModel):
    """Two sites (e.g. two data centres): LAN within, WAN across.

    Nodes are assigned to a site on first sight, by a Bernoulli draw
    with ``site_a_fraction``; the assignment is memoised so a node's
    site is stable for the simulation's lifetime.  ``spread`` adds a
    +/- fraction of uniform noise to each leg so same-class legs are
    not perfectly synchronous.
    """

    lan_s: float = 0.002
    wan_s: float = 0.080
    site_a_fraction: float = 0.5
    spread: float = 0.1
    _site_of: Dict[Any, bool] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.lan_s < 0 or self.wan_s < 0:
            raise SimulationError("latency must be non-negative")
        if not 0.0 <= self.site_a_fraction <= 1.0:
            raise SimulationError("site_a_fraction must be a probability")
        if not 0.0 <= self.spread < 1.0:
            raise SimulationError("spread must be in [0, 1)")

    def site(self, rng, node_id: Any) -> bool:
        """The (memoised) site of ``node_id``; True means site A."""
        site = self._site_of.get(node_id)
        if site is None:
            site = rng.random() < self.site_a_fraction
            self._site_of[node_id] = site
        return site

    def sample(self, rng, src: Any = None, dst: Any = None) -> float:
        same = self.site(rng, src) == self.site(rng, dst)
        base = self.lan_s if same else self.wan_s
        if self.spread:
            base *= 1.0 + rng.uniform(-self.spread, self.spread)
        return base


#: Message-leg labels passed to :meth:`LinkTiming.sample`: the two legs
#: of a dialogue round trip, and a one-way push.  Timing strategies use
#: them to treat e.g. replies differently from requests.
LEG_REQUEST = "request"
LEG_REPLY = "reply"
LEG_PUSH = "push"


class LinkTiming:
    """A latency model bound to its RNG stream plus a dialogue timeout.

    This is what the network hands to every :class:`~repro.sim.channel.Channel`
    in event mode; channels use it to price each message leg and decide
    whether the round trip timed out.  ``timeout_s`` of ``None`` means
    initiators wait forever (latency then only delays one-way pushes).

    **Timing strategies.**  A node controls *when its own messages
    leave*: holding a reply back is indistinguishable, to the waiting
    peer, from a slow link.  ``register_strategy`` binds a
    :class:`~repro.adversary.timing.TimingStrategy` to a sender id;
    every leg that sender transmits is then re-priced by the strategy
    (``shape``) after the honest latency sample is drawn.  The base
    sample is always drawn first, strategy or not, so registering
    attackers never perturbs the shared latency RNG stream and every
    honest leg in a run stays bit-identical to the attacker-free run.
    """

    __slots__ = ("model", "timeout_s", "rng", "_strategies")

    def __init__(
        self, model: LatencyModel, rng, timeout_s: Optional[float] = None
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise SimulationError("timeout must be positive (or None)")
        self.model = model
        self.timeout_s = timeout_s
        self.rng = rng
        self._strategies: Dict[Any, Any] = {}

    def register_strategy(self, sender_id: Any, strategy: Any) -> None:
        """Let ``strategy`` re-price every leg sent by ``sender_id``."""
        self._strategies[sender_id] = strategy

    def unregister_strategy(self, sender_id: Any) -> None:
        self._strategies.pop(sender_id, None)

    def sample(self, src: Any, dst: Any, leg: str = LEG_PUSH) -> float:
        """One leg's latency in seconds (possibly strategy-shaped)."""
        base = self.model.sample(self.rng, src, dst)
        strategy = self._strategies.get(src)
        if strategy is None:
            return base
        return strategy.shape(base, src, dst, leg, self.timeout_s)
