"""Pluggable simulation runtimes: who runs next, and when.

Historically ``Engine.run`` *was* the runtime: a hard-coded PeerNet/
PeerSim lock-step loop.  This module splits that decision out into a
:class:`Scheduler` so one simulated universe (the :class:`~repro.sim.engine.Engine`:
nodes, network, clock, trace, observers) can be driven by different
notions of time:

* :class:`CycleScheduler` — the paper's model (§II-A), extracted
  verbatim from the old ``Engine.run`` loop.  Each cycle every alive
  node is activated exactly once in a freshly shuffled order.  It is
  required to consume the engine's RNG streams identically to the
  pre-refactor loop, so seeded runs stay bit-for-bit reproducible
  across the refactor (guarded by ``tests/properties/
  test_scheduler_equivalence.py``).

* :class:`EventScheduler` — a latency-aware discrete-event runtime.
  A binary heap orders node activations (per-node timers with optional
  period jitter), cycle-boundary housekeeping (churn, observer
  sampling), delayed one-way pushes, timed churn, and wall-clock
  observer sampling.  Dialogue legs are priced by a
  :class:`~repro.sim.latency.LatencyModel` and can time out, which
  reproduces the §V-A partial-failure cases from *timing* instead of
  loss.

Both schedulers run the same protocol code through the same
``ProtocolNode`` interface; experiments choose the runtime with one
argument (see :func:`make_scheduler`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.sim.latency import ConstantLatency, LatencyModel, LinkTiming

# Heap tie-break priorities for events that share an instant: boundary
# housekeeping (churn in, samples out) runs before message deliveries,
# which land before the activations they might influence; wall-clock
# sampling observes the dust after it settles.  Deferred callbacks
# (retry backoff) share the activation slot — they are activations a
# node asked for itself.
_P_BOUNDARY = 0
_P_TIMED_CHURN = 1
_P_DELIVERY = 2
_P_ACTIVATE = 3
_P_SAMPLE = 4

_K_BOUNDARY = "boundary"
_K_CHURN = "churn"
_K_DELIVERY = "delivery"
_K_ACTIVATE = "activate"
_K_SAMPLE = "sample"
_K_CALLBACK = "callback"


@dataclass(frozen=True)
class PeriodJitter:
    """How a node's next activation timer deviates from the period.

    ``none``    — strict timers: exactly one activation per period.
    ``uniform`` — each interval is ``period * (1 ± spread)``; nodes
                  drift apart but keep their average rate.
    ``poisson`` — memoryless activation (exponential intervals with
                  mean ``period``): the fully desynchronised gossip
                  regime.
    """

    mode: str = "none"
    spread: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("none", "uniform", "poisson"):
            raise SimulationError(f"unknown jitter mode {self.mode!r}")
        if not 0.0 <= self.spread < 1.0:
            raise SimulationError("jitter spread must be in [0, 1)")

    def next_interval(self, rng, period: float) -> float:
        """Seconds until a node's next activation."""
        if self.mode == "uniform" and self.spread:
            return period * (1.0 + rng.uniform(-self.spread, self.spread))
        if self.mode == "poisson":
            return rng.expovariate(1.0 / period)
        return period


class Scheduler:
    """Interface: advance an engine's universe by ``cycles`` cycles."""

    def run(self, engine: Any, cycles: int) -> None:
        raise NotImplementedError


class CycleScheduler(Scheduler):
    """The paper's lock-step cycle model (extracted from ``Engine.run``).

    Per cycle: apply churn, activate every alive node's ``begin_cycle``
    in one shuffled order, then every ``run_cycle`` in a second shuffled
    order, then fire observers and advance the clock one cycle.  The
    shuffles draw from the engine's ``activation-order`` stream exactly
    as the pre-refactor loop did.
    """

    def run(self, engine: Any, cycles: int) -> None:
        for _ in range(cycles):
            self._run_one_cycle(engine)

    def _run_one_cycle(self, engine: Any) -> None:
        cycle = engine.clock.cycle
        engine._apply_churn(cycle)
        plan = engine._verification_plan
        if plan is not None:
            # New cycle, fresh cross-node digest memo (idempotent —
            # bound nodes also call this from begin_cycle).
            plan.begin_cycle(cycle)

        # One shuffled order buffer, reused across cycles: refilled from
        # the alive list (attachment order, matching ``list(engine.nodes)``)
        # so each shuffle starts from the same arrangement — and thus
        # produces the same permutation — as a freshly built list would.
        order = engine._order_buffer
        order[:] = engine._alive_list
        nodes_get = engine.nodes.get
        order_rng = engine._order_rng
        order_rng.shuffle(order)
        for node_id in order:
            node = nodes_get(node_id)
            if node is not None:
                node.begin_cycle(cycle)

        order_rng.shuffle(order)
        for node_id in order:
            node = nodes_get(node_id)
            if node is not None:
                node.run_cycle(engine.network)

        for observer in engine._observers:
            observer.on_cycle_end(engine, cycle)
        engine.network.health_tick(cycle)
        engine.clock.advance()
        policy = engine.checkpoint_policy
        if policy is not None:
            # After the advance: the saved state is exactly the start
            # of cycle ``cycle + 1``, which is where resume continues.
            policy.after_cycle(engine, cycle)


class EventScheduler(Scheduler):
    """Latency-aware discrete-event runtime.

    Every alive node owns an activation timer: it first fires at a
    uniformly staggered offset within the first period (so activations
    spread over the period instead of bunching at boundaries the way
    the cycle model does), then every ``period``-with-``jitter``
    seconds.  An activation runs ``begin_cycle`` + ``run_cycle`` for
    that node alone, with the global clock standing at the activation
    instant — so descriptor timestamps, frequency checks, and cache
    horizons all see continuous time.

    ``latency`` prices every dialogue leg and every one-way push;
    ``timeout_s`` bounds a dialogue round trip (``None`` = wait
    forever).  A round trip whose request leg beat the deadline but
    whose reply leg did not raises
    :class:`~repro.sim.channel.MessageTimeout` with ``delivered=True``
    — the same asymmetric §V-A case-2 outcome as a dropped reply, so
    protocol code treats spent descriptors identically on both paths.

    Cycle-boundary events keep the cycle-oriented machinery working
    unchanged: per-cycle churn applies at each boundary, and observers'
    ``on_cycle_end`` fires with the completed cycle number.  Passing
    ``sample_every_s`` additionally fires every observer's
    ``on_time_sample`` at that wall-clock cadence (left ``None``,
    wall-clock sampling is off and only the per-cycle hooks run).

    The heap persists across ``run`` calls, so consecutive
    ``engine.run(k)`` invocations continue the same timeline exactly
    like the cycle runtime does.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        jitter: Optional[PeriodJitter] = None,
        timeout_s: Optional[float] = None,
        sample_every_s: Optional[float] = None,
        stagger: bool = True,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise SimulationError("timeout must be positive (or None)")
        if sample_every_s is not None and sample_every_s <= 0:
            raise SimulationError("sampling interval must be positive")
        self.latency = latency
        self.jitter = jitter or PeriodJitter()
        self.timeout_s = timeout_s
        self.sample_every_s = sample_every_s
        self.stagger = stagger

        self._engine: Any = None
        self._heap: List[Tuple[float, int, int, str, Any]] = []
        self._seq = 0
        self._pending_activation: Set[Any] = set()
        self._next_sample_s: Optional[float] = None
        self._timed_churn_horizon_s = 0.0
        # Highest cycle whose per-cycle churn has been applied; guards
        # against re-applying it when run() is called repeatedly.
        self._churn_done_cycle = -1
        self._rng = None
        self._timing: Optional[LinkTiming] = None
        # Per-sender timing strategies registered before the scheduler
        # attached (wiring happens at build time, attachment at the
        # first run); handed to the LinkTiming when it exists.
        self._pending_strategies: dict = {}

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def _push_event(
        self, time_s: float, priority: int, kind: str, data: Any
    ) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time_s, priority, self._seq, kind, data))

    def schedule_push(self, sender_id: Any, target_id: Any, payload: Any) -> None:
        """Event-transport hook: carry a one-way push with a sampled delay.

        ``payload`` is whatever on-wire form the network's message
        transport produced — the scheduler only times it; decoding
        happens in ``Network.deliver_push`` at the receiver.  Draws
        from the same latency stream as dialogue legs, so every latency
        sample in a run comes from one dedicated RNG.
        """
        delay = 0.0
        if self._timing is not None:
            delay = self._timing.sample(sender_id, target_id)
        self._push_event(
            self._engine.clock.now_s + delay,
            _P_DELIVERY,
            _K_DELIVERY,
            (sender_id, target_id, payload),
        )

    def call_later(self, delay_s: float, callback: Any) -> None:
        """Run ``callback()`` after ``delay_s`` of virtual time.

        The protocol-facing deferral primitive (exposed through
        :meth:`~repro.sim.network.Network.call_later`): retry backoff
        schedules its re-attempt here so "wait, then try again" costs
        virtual time instead of happening in the same instant.
        Callbacks scheduled past the current run's horizon stay queued
        and fire in the next ``run``, like any other future event.
        """
        if delay_s < 0:
            raise SimulationError("callback delay must be non-negative")
        self._push_event(
            self._engine.clock.now_s + delay_s,
            _P_ACTIVATE,
            _K_CALLBACK,
            callback,
        )

    def register_timing_strategy(self, sender_id: Any, strategy: Any) -> None:
        """Bind a per-sender :class:`~repro.adversary.timing.TimingStrategy`.

        Takes effect immediately if the scheduler is already attached to
        an engine, otherwise at attachment.  Strategies require link
        timing; the scheduler builds it whenever latency, a timeout, or
        at least one strategy is configured — including here, when a
        strategy arrives after an attach that needed no timing yet.
        """
        self._pending_strategies[sender_id] = strategy
        if self._timing is not None:
            self._timing.register_strategy(sender_id, strategy)
        elif self._engine is not None:
            self._timing = LinkTiming(
                model=self.latency or ConstantLatency(0.0),
                rng=self._engine.rng_hub.stream("event-latency"),
                timeout_s=self.timeout_s,
            )
            self._timing.register_strategy(sender_id, strategy)
            self._engine.network.set_link_timing(self._timing)

    def _schedule_activation(self, node_id: Any, time_s: float) -> None:
        self._pending_activation.add(node_id)
        self._push_event(time_s, _P_ACTIVATE, _K_ACTIVATE, node_id)

    def _seed_new_activations(self, now_s: float, period: float) -> None:
        """Give every alive node without a timer its first activation."""
        rng = self._rng
        for node_id in self._engine._alive_list:
            if node_id in self._pending_activation:
                continue
            offset = rng.uniform(0.0, period) if self.stagger else 0.0
            self._schedule_activation(node_id, now_s + offset)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def _attach(self, engine: Any) -> None:
        if self._engine is None:
            self._engine = engine
            self._rng = engine.rng_hub.stream("event-scheduler")
            # Link timing exists whenever anything needs per-leg pricing:
            # a latency model, a dialogue timeout (so stalled legs can
            # expire even on otherwise-instant links), or a registered
            # timing strategy.  A missing model means instant legs.
            if (
                self.latency is not None
                or self.timeout_s is not None
                or self._pending_strategies
            ):
                self._timing = LinkTiming(
                    model=self.latency or ConstantLatency(0.0),
                    rng=engine.rng_hub.stream("event-latency"),
                    timeout_s=self.timeout_s,
                )
                for sender_id, strategy in self._pending_strategies.items():
                    self._timing.register_strategy(sender_id, strategy)
            self._timed_churn_horizon_s = engine.clock.now_s
        elif self._engine is not engine:
            raise SimulationError(
                "an EventScheduler instance is bound to one engine; "
                "build a fresh scheduler per engine"
            )
        engine.network.set_link_timing(self._timing)
        engine.network.use_event_transport(self)

    def run(self, engine: Any, cycles: int) -> None:
        self._attach(engine)
        clock = engine.clock
        period = clock.period_seconds
        start_cycle = clock.cycle
        end_cycle = start_cycle + cycles
        end_time = end_cycle * period

        # Housekeeping owed to the run's first instant: this cycle's
        # churn (the cycle loop applies churn at cycle start), timers
        # for nodes that joined while the scheduler was idle, timed
        # churn up to the new horizon, and the sampling cadence.
        if start_cycle > self._churn_done_cycle:
            engine._apply_churn(start_cycle)
            self._churn_done_cycle = start_cycle
        if engine._verification_plan is not None:
            engine._verification_plan.begin_cycle(start_cycle)
        self._seed_new_activations(clock.now_s, period)
        for event in engine._churn.timed_events_between(
            max(self._timed_churn_horizon_s, clock.now_s), end_time
        ):
            self._push_event(event.time_s, _P_TIMED_CHURN, _K_CHURN, event)
        self._timed_churn_horizon_s = max(self._timed_churn_horizon_s, end_time)
        for cycle in range(start_cycle, end_cycle):
            self._push_event(
                (cycle + 1) * period, _P_BOUNDARY, _K_BOUNDARY, cycle
            )
        if self.sample_every_s is not None and self._next_sample_s is None:
            self._next_sample_s = clock.now_s + self.sample_every_s
        if self._next_sample_s is not None:
            while self._next_sample_s <= end_time:
                self._push_event(
                    self._next_sample_s, _P_SAMPLE, _K_SAMPLE, None
                )
                self._next_sample_s += self.sample_every_s

        heap = self._heap
        while heap:
            time_s, priority, _seq, kind, data = heap[0]
            if time_s > end_time or (
                time_s == end_time and priority > _P_BOUNDARY
            ):
                # Future work (activations beyond the horizon, pushes
                # still in flight) stays queued for the next run.
                break
            heapq.heappop(heap)
            if kind == _K_BOUNDARY:
                # Pin the cycle explicitly: the boundary instant was
                # computed as (cycle + 1) * period, and deriving the
                # cycle back out of the float product by division is
                # exactly the rounding trap advance_to lets us skip.
                clock.advance_to(time_s, cycle=data + 1)
            elif time_s > clock.now_s:
                clock.advance_to(time_s)
            if kind == _K_ACTIVATE:
                self._dispatch_activation(data, time_s, period)
            elif kind == _K_CALLBACK:
                data()
            elif kind == _K_DELIVERY:
                sender_id, target_id, payload = data
                engine.network.deliver_push(sender_id, target_id, payload)
            elif kind == _K_BOUNDARY:
                self._dispatch_boundary(data, time_s, end_time, period)
            elif kind == _K_CHURN:
                engine._apply_churn_event(data, clock.cycle)
                self._seed_new_activations(clock.now_s, period)
            else:  # _K_SAMPLE
                for observer in engine._observers:
                    observer.on_time_sample(engine, time_s)

        clock.advance_to(end_time, cycle=end_cycle)

    def _dispatch_activation(
        self, node_id: Any, time_s: float, period: float
    ) -> None:
        engine = self._engine
        node = engine.nodes.get(node_id)
        if node is None:
            # Left or crashed; its timer dies with it.  A re-join gets a
            # fresh timer from _seed_new_activations.
            self._pending_activation.discard(node_id)
            return
        node.begin_cycle(engine.clock.cycle)
        node.run_cycle(engine.network)
        interval = self.jitter.next_interval(self._rng, period)
        self._push_event(
            time_s + interval, _P_ACTIVATE, _K_ACTIVATE, node_id
        )

    def _dispatch_boundary(
        self, cycle: int, time_s: float, end_time: float, period: float
    ) -> None:
        engine = self._engine
        for observer in engine._observers:
            observer.on_cycle_end(engine, cycle)
        engine.network.health_tick(cycle)
        policy = engine.checkpoint_policy
        if policy is not None:
            # Same boundary the cycle runtime checkpoints at (the clock
            # already reads ``cycle + 1`` here).  Event-runtime resume
            # restores state but not the in-flight event queue — see
            # docs/OPS.md for the (cycle-runtime-only) bit-exactness
            # contract.
            policy.after_cycle(engine, cycle)
        if time_s < end_time and cycle + 1 > self._churn_done_cycle:
            # The next cycle starts now: its churn applies here, exactly
            # where the cycle runtime would apply it.
            engine._apply_churn(cycle + 1)
            self._churn_done_cycle = cycle + 1
            if engine._verification_plan is not None:
                engine._verification_plan.begin_cycle(cycle + 1)
            self._seed_new_activations(time_s, period)


def make_scheduler(
    runtime: Any = "cycle",
    *,
    latency: Optional[LatencyModel] = None,
    jitter: Optional[PeriodJitter] = None,
    timeout_s: Optional[float] = None,
    sample_every_s: Optional[float] = None,
    stagger: bool = True,
) -> Scheduler:
    """Resolve a ``runtime=`` knob into a scheduler instance.

    ``runtime`` is ``"cycle"``, ``"event"``, or an already-built
    :class:`Scheduler` (returned as-is, keyword options rejected).
    """
    if isinstance(runtime, Scheduler):
        if any(
            option is not None
            for option in (latency, jitter, timeout_s, sample_every_s)
        ):
            raise SimulationError(
                "runtime options only apply when building by name; "
                "configure the Scheduler instance directly instead"
            )
        return runtime
    if runtime == "cycle":
        return CycleScheduler()
    if runtime == "event":
        return EventScheduler(
            latency=latency,
            jitter=jitter,
            timeout_s=timeout_s,
            sample_every_s=sample_every_s,
            stagger=stagger,
        )
    raise SimulationError(
        f"unknown runtime {runtime!r}; expected 'cycle', 'event', or a "
        "Scheduler instance"
    )
