"""Coordinator for the sharded multi-process engine.

The parent process keeps the fully-built overlay as a **mirror**: it
never runs protocol code itself, but it replicates the activation-order
RNG stream (to know who owns the first token of each cycle), applies
the per-node state snapshots workers ship back at sampling boundaries,
and runs the *unchanged* metric probes / figure renderers against its
own node objects — which is what makes an N-shard deterministic run
produce bit-for-bit the same fig2/3/5/6/7 series as the single-process
engine (see docs/SHARDING.md for the full determinism contract).

Three ways in:

* :class:`ShardedSession` — explicit lifecycle (``start`` /
  ``run_cycles`` / ``finish``), used by ``scale_sharded`` and the
  crash-robustness tests.  The fleet stays alive across ``run_cycles``
  calls, so warm-up-then-measure loops shard faithfully.
* :func:`run_overlay_sharded` / :func:`run_with_probes_sharded` —
  one-shot wrappers mirroring ``Overlay.run`` and
  ``repro.experiments.runner.run_with_probes``.
* :func:`sharded` — an ambient context manager: inside ``with
  sharded(shards=4):`` every ``Overlay.run`` and ``run_with_probes``
  call in the process is transparently routed through a sharded
  session, which is how the unmodified figure harnesses (and the
  equivalence tests) run distributed.

Failure policy: any worker death, remote exception, or silence past
``deadline_s`` tears the whole fleet down and raises a typed
:class:`~repro.errors.ShardFailure` (:class:`~repro.errors.ShardTimeout`
for silence) — no hangs, no partially-applied mirrors presented as
results.
"""

from __future__ import annotations

import selectors
import socket
import time
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ShardFailure, ShardTimeout
from repro.sim.scheduler import CycleScheduler
from repro.sim.shard import (
    OP_BEGIN,
    OP_BEGIN_DONE,
    OP_CHECKPOINT,
    OP_CHECKPOINT_DONE,
    OP_CYCLE_DONE,
    OP_END_CYCLE,
    OP_END_DONE,
    OP_ERROR,
    OP_FINAL,
    OP_FINISH,
    OP_FREE,
    OP_FREE_DONE,
    OP_HELLO,
    OP_RESTORE,
    OP_RESTORE_DONE,
    OP_SHUTDOWN,
    OP_SNAPSHOT,
    OP_TOKEN,
    FrameChannel,
    ShardPlan,
    ShardWorker,
)

MODES = ("deterministic", "free")
BACKENDS = ("fork", "thread")

_OP_NAMES = {
    OP_HELLO: "HELLO",
    OP_BEGIN_DONE: "BEGIN_DONE",
    OP_CYCLE_DONE: "CYCLE_DONE",
    OP_END_DONE: "END_DONE",
    OP_SNAPSHOT: "SNAPSHOT",
    OP_FREE_DONE: "FREE_DONE",
    OP_FINAL: "FINAL",
    OP_CHECKPOINT_DONE: "CHECKPOINT_DONE",
    OP_RESTORE_DONE: "RESTORE_DONE",
}

#: Engines already consumed by a context-routed sharded run.  A second
#: ``overlay.run`` would re-fork workers from a mirror that only had
#: views/blacklists applied (not quotas, caches, or plan memos), which
#: silently breaks the determinism contract — refuse instead.
_CONSUMED: "weakref.WeakSet" = weakref.WeakSet()


# ----------------------------------------------------------------------
# ambient context
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardContext:
    """Parameters a ``with sharded(...)`` block applies to every run."""

    shards: int
    mode: str = "deterministic"
    deadline_s: float = 120.0
    backend: str = "fork"
    # Thread-backend contexts need a way to rebuild the overlay once
    # per shard (fork gets replicas for free via copy-on-write).
    replica_factory: Optional[Callable[[int], Any]] = None


_ACTIVE: Optional[ShardContext] = None


@contextmanager
def sharded(
    shards: int,
    mode: str = "deterministic",
    deadline_s: float = 120.0,
    backend: str = "fork",
    replica_factory: Optional[Callable[[int], Any]] = None,
):
    """Route every ``Overlay.run``/``run_with_probes`` in the block
    through a sharded session — the unmodified figure harnesses run
    distributed under it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ShardContext(
        shards=shards,
        mode=mode,
        deadline_s=deadline_s,
        backend=backend,
        replica_factory=replica_factory,
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


def active_context() -> Optional[ShardContext]:
    return _ACTIVE


def _clear_context_for_worker() -> None:
    """Forked workers inherit the parent's ambient context; clear it so
    nothing a worker ever does can recursively spawn fleets."""
    global _ACTIVE
    _ACTIVE = None


# ----------------------------------------------------------------------
# worker process/thread entry
# ----------------------------------------------------------------------


def _worker_entry(
    engine: Any,
    index: int,
    plan: ShardPlan,
    control_sock: socket.socket,
    peer_socks: Dict[int, socket.socket],
    close_sockets: List[socket.socket],
) -> None:
    _clear_context_for_worker()
    for sock in close_sockets:
        try:
            sock.close()
        except OSError:
            pass
    control = FrameChannel(control_sock)
    peers = {j: FrameChannel(s) for j, s in peer_socks.items()}
    worker = ShardWorker(engine, index, plan, control, peers)
    try:
        worker.serve()
    finally:
        control.close()
        for channel in peers.values():
            channel.close()


# ----------------------------------------------------------------------
# the session
# ----------------------------------------------------------------------


class ShardedSession:
    """One fleet of shard workers driving one overlay.

    ``backend="fork"`` (default) forks worker processes *after* the
    overlay is built, so every worker inherits an identical replica
    copy-on-write — no pickling of engines, and foreign nodes' pages
    stay shared because workers never touch them.  ``backend="thread"``
    runs workers as in-process threads over the same socket protocol;
    it needs a ``replica_factory(shard_index) -> overlay`` that
    rebuilds the overlay (identically seeded builds are replicas by
    construction).  Threads see the coverage tracer and need no fork
    support — they are the unit-test backend; processes are the real
    thing.
    """

    def __init__(
        self,
        overlay: Any,
        shards: int,
        *,
        mode: str = "deterministic",
        deadline_s: float = 120.0,
        backend: str = "fork",
        replica_factory: Optional[Callable[[int], Any]] = None,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        if mode not in MODES:
            raise ShardFailure(f"unknown sharded mode {mode!r}")
        if backend not in BACKENDS:
            raise ShardFailure(f"unknown sharded backend {backend!r}")
        if shards < 1:
            raise ShardFailure("a sharded session needs at least one shard")
        if backend == "thread" and replica_factory is None:
            raise ShardFailure(
                "the thread backend needs a replica_factory to rebuild "
                "the overlay once per shard"
            )
        engine = overlay.engine
        if not isinstance(engine.scheduler, CycleScheduler):
            raise ShardFailure(
                "sharded runs support the cycle runtime only (the event "
                "runtime's continuous time has no shard-stable order)"
            )
        if engine._churn._by_cycle or engine._churn._timed:
            raise ShardFailure(
                "sharded runs do not support churn schedules"
            )
        policy = engine.config.drop_policy
        if mode == "deterministic" and (
            policy.request_loss or policy.reply_loss or policy.burst_length
        ):
            raise ShardFailure(
                "deterministic sharding requires a zero-loss drop policy: "
                "per-shard network RNG streams advance independently, so "
                "loss draws would diverge from the single-process engine"
            )
        self.overlay = overlay
        self.mirror = engine
        self.shards = shards
        self.mode = mode
        self.deadline_s = deadline_s
        self.backend = backend
        self.replica_factory = replica_factory
        if plan is None:
            pinned = {
                node.node_id: 0 for node in overlay.malicious_nodes or ()
            }
            plan = ShardPlan(shards, pinned=pinned)
        self.plan = plan
        self.counters: Dict[str, int] = {}
        self._controls: List[FrameChannel] = []
        self._workers: List[Any] = []
        self._started = False
        self._finished = False
        self._selector: Optional[selectors.DefaultSelector] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ShardedSession":
        if self._started:
            raise ShardFailure("sharded session already started")
        shards = self.shards
        control_pairs = [socket.socketpair() for _ in range(shards)]

        def data_pair() -> Tuple[socket.socket, socket.socket]:
            pair = socket.socketpair()
            # Gossip frames carry whole sample chains (tens of KB per
            # leg), so the ~208KB default buffer holds only a handful
            # of envelopes: a worker whose peer is mid-activation then
            # blocks in sendall until the peer's next pump, and on a
            # single core every such stall is a forced context switch.
            # Big buffers let bursts land asynchronously.
            for sock in pair:
                for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
                    try:
                        sock.setsockopt(socket.SOL_SOCKET, opt, 4 << 20)
                    except OSError:  # pragma: no cover - locked-down host
                        break
            return pair

        data_pairs: Dict[Tuple[int, int], Tuple[socket.socket, socket.socket]] = {
            (a, b): data_pair()
            for a in range(shards)
            for b in range(a + 1, shards)
        }

        def worker_sockets(i: int) -> Tuple[socket.socket, Dict[int, socket.socket]]:
            peers = {}
            for (a, b), (end_a, end_b) in data_pairs.items():
                if a == i:
                    peers[b] = end_a
                elif b == i:
                    peers[a] = end_b
            return control_pairs[i][1], peers

        if self.backend == "fork":
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX hosts
                raise ShardFailure(
                    "the fork backend needs a POSIX host; use "
                    'backend="thread" with a replica_factory'
                ) from exc
            all_sockets = [s for pair in control_pairs for s in pair]
            all_sockets += [s for pair in data_pairs.values() for s in pair]
            for i in range(shards):
                control, peers = worker_sockets(i)
                keep = {control.fileno()}
                keep.update(s.fileno() for s in peers.values())
                close = [s for s in all_sockets if s.fileno() not in keep]
                process = ctx.Process(
                    target=_worker_entry,
                    args=(self.mirror, i, self.plan, control, peers, close),
                    daemon=True,
                    name=f"shard-{i}",
                )
                process.start()
                self._workers.append(process)
            # The parent keeps only its control ends.
            for _, child_end in control_pairs:
                child_end.close()
            for end_a, end_b in data_pairs.values():
                end_a.close()
                end_b.close()
        else:
            import threading

            for i in range(shards):
                control, peers = worker_sockets(i)
                replica = self.replica_factory(i)
                thread = threading.Thread(
                    target=_worker_entry,
                    args=(replica.engine, i, self.plan, control, peers, []),
                    daemon=True,
                    name=f"shard-{i}",
                )
                thread.start()
                self._workers.append(thread)

        self._selector = selectors.DefaultSelector()
        for i, (parent_end, _) in enumerate(control_pairs):
            channel = FrameChannel(parent_end)
            self._controls.append(channel)
            self._selector.register(channel, selectors.EVENT_READ, (i, channel))
        self._inboxes: List[List[Tuple[int, Any]]] = [[] for _ in range(shards)]
        self._started = True
        self._collect_all(OP_HELLO)
        return self

    def close(self) -> None:
        """Tear the fleet down unconditionally (idempotent).

        A closed session refuses further driving — ``run_cycles`` and
        ``finish`` raise instead of touching dead links."""
        self._finished = True
        for worker in self._workers:
            terminate = getattr(worker, "terminate", None)
            if terminate is not None and worker.is_alive():
                terminate()
        for worker in self._workers:
            join = getattr(worker, "join", None)
            if join is not None:
                worker.join(timeout=5.0)
        for channel in self._controls:
            channel.close()
        if self._selector is not None:
            self._selector.close()
            self._selector = None
        self._controls = []
        self._workers = []

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- driving -------------------------------------------------------

    def run_cycles(
        self,
        cycles: int,
        sample_cycles: Iterable[int] = (),
        on_sample: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Advance the whole fleet by ``cycles`` cycles.

        At each cycle in ``sample_cycles`` the workers ship their
        partition's node state, the mirror applies it, and
        ``on_sample(cycle)`` runs — the hook the probe harness uses to
        sample the unchanged metric functions against merged state.
        """
        if not self._started or self._finished:
            raise ShardFailure("sharded session is not running")
        samples: Set[int] = set(sample_cycles)
        mirror = self.mirror
        for _ in range(cycles):
            cycle = mirror.clock.cycle
            want = cycle in samples
            if self.mode == "deterministic":
                self._broadcast(OP_BEGIN, (cycle,))
                self._collect_all(OP_BEGIN_DONE)
                # Replicate the two per-cycle shuffles on the mirror's
                # own activation-order stream: the mirror never runs
                # nodes, but it must know the run permutation to seed
                # the cycle's first token at the right shard.
                order = mirror._order_buffer
                order[:] = mirror._alive_list
                mirror._order_rng.shuffle(order)
                mirror._order_rng.shuffle(order)
                if order:
                    first = self.plan.shard_of(order[0])
                    self._controls[first].send(OP_TOKEN, (cycle, 0))
                    self._collect_any(OP_CYCLE_DONE)
            else:
                self._broadcast(OP_FREE, (cycle,))
                self._collect_all(OP_FREE_DONE)
            self._broadcast(OP_END_CYCLE, (cycle, want))
            if want:
                merged: Dict[Any, Dict[str, Any]] = {}
                for _, states in self._collect_all(OP_SNAPSHOT):
                    merged.update(states)
                self._apply_node_states(merged)
                if on_sample is not None:
                    on_sample(cycle)
            else:
                self._collect_all(OP_END_DONE)
            mirror.clock.advance()

    def finish(self) -> Dict[str, int]:
        """Ship final state back, merge it into the mirror, shut down.

        Returns the summed per-shard network counters (dialogues,
        pushes, measured bytes)."""
        if not self._started or self._finished:
            raise ShardFailure("sharded session is not running")
        self._broadcast(OP_FINISH)
        finals = self._collect_all(OP_FINAL)
        merged: Dict[Any, Dict[str, Any]] = {}
        counters: Dict[str, int] = {}
        trace_events: List[Any] = []
        for (final,) in finals:
            merged.update(final["nodes"])
            trace_events.extend(final["trace"])
            for name, value in final["counters"].items():
                counters[name] = counters.get(name, 0) + value
        self._apply_node_states(merged)
        self.mirror.trace._events.extend(trace_events)
        self.counters = counters
        self._broadcast(OP_SHUTDOWN)
        self._finished = True
        _CONSUMED.add(self.mirror)
        self.close()
        return counters

    # -- checkpoint / restore ------------------------------------------

    def checkpoint_fleet(self, directory: Any) -> List[Any]:
        """Checkpoint every shard (and the mirror) into ``directory``.

        Must be called at a cycle boundary (i.e. between ``run_cycles``
        calls).  Writes ``shard-<i>.ckpt`` per worker plus
        ``mirror.ckpt`` for the parent's replica, and returns the
        written paths.  Restore with :meth:`restore_fleet` on a freshly
        built session of the same shape.
        """
        import pathlib

        from repro.ops.checkpoint import save_checkpoint

        if not self._started or self._finished:
            raise ShardFailure("sharded session is not running")
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: List[Any] = []
        try:
            # Not _broadcast: every shard gets its own file path.
            for index, channel in enumerate(self._controls):
                path = directory / f"shard-{index}.ckpt"
                channel.send(OP_CHECKPOINT, (str(path),))
                paths.append(path)
        except (OSError, BrokenPipeError):
            self._fail("a shard closed its control link mid-checkpoint")
        self._collect_all(OP_CHECKPOINT_DONE)
        paths.append(save_checkpoint(self.mirror, directory / "mirror.ckpt"))
        return paths

    def restore_fleet(self, directory: Any) -> None:
        """Overlay a :meth:`checkpoint_fleet` snapshot onto this fleet.

        The session must be freshly started from an identically built
        overlay with the same shard count; each worker restores its own
        ``shard-<i>.ckpt`` and the mirror restores ``mirror.ckpt``, so
        clocks, RNG streams, and node state all resume in lockstep.
        """
        import pathlib

        from repro.ops.checkpoint import restore_checkpoint

        if not self._started or self._finished:
            raise ShardFailure("sharded session is not running")
        directory = pathlib.Path(directory)
        restore_checkpoint(self.mirror, directory / "mirror.ckpt")
        try:
            for index, channel in enumerate(self._controls):
                path = directory / f"shard-{index}.ckpt"
                if not path.exists():
                    self._fail(
                        f"missing {path}: the checkpoint was taken with a "
                        "different shard count"
                    )
                channel.send(OP_RESTORE, (str(path),))
        except (OSError, BrokenPipeError):
            self._fail("a shard closed its control link mid-restore")
        self._collect_all(OP_RESTORE_DONE)

    # -- internals -----------------------------------------------------

    def _apply_node_states(self, states: Dict[Any, Dict[str, Any]]) -> None:
        nodes = self.mirror.nodes
        for node_id, state in states.items():
            node = nodes[node_id]
            node.view = state["view"]
            blacklist = state.get("blacklist")
            if blacklist is not None:
                node.blacklist = blacklist
                # SecureCyclonNode aliases the proof map for the hot
                # membership test; keep the alias coherent.
                if hasattr(node, "_blacklist_map"):
                    node._blacklist_map = blacklist.by_culprit
            clone_events = state.get("clone_events")
            if clone_events is not None:
                node.clone_events = clone_events

    def _broadcast(self, op: int, body: Any = ()) -> None:
        try:
            for channel in self._controls:
                channel.send(op, body)
        except (OSError, BrokenPipeError):
            self._fail("a shard closed its control link mid-run")

    def _collect_all(self, op: int) -> List[Any]:
        """One ``op`` body from every worker, in shard order."""
        bodies: List[Optional[Any]] = [None] * self.shards
        missing = set(range(self.shards))
        while missing:
            index, body = self._next_control(op)
            if index in missing:
                missing.discard(index)
                bodies[index] = body
            else:
                self._fail(
                    f"shard {index} sent a duplicate "
                    f"{_OP_NAMES.get(op, op)}"
                )
        return bodies  # type: ignore[return-value]

    def _collect_any(self, op: int) -> Tuple[int, Any]:
        return self._next_control(op)

    def _next_control(self, expected_op: int) -> Tuple[int, Any]:
        """Next ``expected_op`` envelope from any worker.

        Anything else: ERROR aborts with the remote traceback, an
        unexpected opcode aborts as a protocol violation, silence past
        the deadline aborts as :class:`~repro.errors.ShardTimeout`, and
        a closed link or dead worker aborts as a plain failure."""
        for index, inbox in enumerate(self._inboxes):
            for i, (op, body) in enumerate(inbox):
                if op == expected_op:
                    del inbox[i]
                    return index, body
        deadline = time.monotonic() + self.deadline_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail(
                    f"no {_OP_NAMES.get(expected_op, expected_op)} within "
                    f"{self.deadline_s:.1f}s",
                    timeout=True,
                )
            assert self._selector is not None
            events = self._selector.select(timeout=min(remaining, 0.25))
            if not events:
                self._check_workers_alive()
                continue
            for key, _ in events:
                index, channel = key.data
                try:
                    alive = channel.feed()
                except OSError:
                    alive = False
                if not alive:
                    self._fail(f"shard {index} closed its control link")
                while True:
                    envelope = channel.pop()
                    if envelope is None:
                        break
                    op, body = envelope
                    if op == OP_ERROR:
                        type_name, message, tb = body
                        self._fail(
                            f"shard {index} raised {type_name}: {message}\n"
                            f"{tb}"
                        )
                    if op == expected_op:
                        return index, body
                    self._inboxes[index].append((op, body))

    def _check_workers_alive(self) -> None:
        for index, worker in enumerate(self._workers):
            if not worker.is_alive():
                self._fail(f"shard {index} died (worker exited mid-run)")

    def _fail(self, message: str, timeout: bool = False) -> None:
        self.close()
        error = ShardTimeout if timeout else ShardFailure
        raise error(f"sharded run failed: {message}")


# ----------------------------------------------------------------------
# one-shot wrappers (the Overlay.run / run_with_probes seams)
# ----------------------------------------------------------------------


def _session_from_context(
    overlay: Any, context: Optional[ShardContext]
) -> ShardedSession:
    if context is None:
        context = active_context()
    if context is None:
        raise ShardFailure("no sharded context is active")
    if overlay.engine in _CONSUMED:
        raise ShardFailure(
            "this overlay already completed a sharded run: the mirror "
            "only carries views/blacklists back, so a second run would "
            "not be deterministic — build a fresh overlay instead"
        )
    return ShardedSession(
        overlay,
        context.shards,
        mode=context.mode,
        deadline_s=context.deadline_s,
        backend=context.backend,
        replica_factory=context.replica_factory,
    )


def run_overlay_sharded(
    overlay: Any, cycles: int, context: Optional[ShardContext] = None
) -> None:
    """Sharded twin of ``Overlay.run(cycles)``: run, merge final state."""
    with _session_from_context(overlay, context) as session:
        session.start()
        session.run_cycles(cycles)
        session.finish()


def run_with_probes_sharded(
    overlay: Any,
    cycles: int,
    probes: Dict[str, Callable[[Any], float]],
    every: int = 1,
    runtime: Optional[Any] = None,
    context: Optional[ShardContext] = None,
) -> Dict[str, Any]:
    """Sharded twin of :func:`repro.experiments.runner.run_with_probes`.

    Samples the same probe functions against the mirror at the same
    cycle boundaries the in-process ``SeriesObserver`` would have used,
    so the returned :class:`~repro.metrics.series.Series` are directly
    (bit-for-bit, in deterministic mode) comparable."""
    from repro.metrics.series import Series
    from repro.sim.observers import SeriesObserver

    if runtime is not None:
        raise ShardFailure(
            "sharded runs support the cycle runtime only"
        )
    engine = overlay.engine
    observer = SeriesObserver(probes, every=every)
    start_cycle = engine.clock.cycle
    sample_cycles = {
        cycle
        for cycle in range(start_cycle, start_cycle + cycles)
        if cycle % every == 0
    }
    with _session_from_context(overlay, context) as session:
        session.start()
        session.run_cycles(
            cycles,
            sample_cycles=sample_cycles,
            on_sample=lambda cycle: observer.on_cycle_end(engine, cycle),
        )
        session.finish()
    result: Dict[str, Series] = {}
    for name in probes:
        series = Series(label=name)
        for cycle, value in observer.series[name]:
            series.append(float(cycle), value)
        result[name] = series
    return result
