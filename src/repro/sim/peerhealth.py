"""Per-peer health scoring and quarantine: graceful wire-plane degradation.

The paper's threat model (§II-C) lets a Byzantine peer put anything on
the wire; PR 5 made the codec total over byte strings, so garbage is
*rejected* — but rejection alone still lets a peer make every receiver
pay to parse its garbage forever.  This module adds the memory: a
:class:`PeerHealthLedger` scores each peer's observable misbehaviour
(frames that fail to decode, frames past the size ceiling, repeated
reply timeouts), decays the score every cycle, and quarantines peers
whose score crosses a threshold — the network then refuses their links
(:class:`~repro.errors.PeerQuarantined`) instead of parsing their
frames.

Hysteresis: quarantine engages at ``quarantine_threshold`` and releases
only when decay brings the score down to ``release_threshold`` (strictly
lower), so a peer oscillating around the entry threshold cannot flap the
quarantine state every cycle.  A peer that genuinely stops misbehaving
is released after a few quiet cycles and rejoins the overlay.

The ledger is installed on the :class:`~repro.sim.network.Network`
(``SimConfig.peer_health`` or ``use_peer_health``) and is shared by all
honest receive paths.  That centralisation is a simulator simplification
in the spirit of the paper's network-wide blacklist (§IV): every honest
node's local health table, merged.  Scoring consumes no randomness and
the ledger is inert for well-behaved peers, so installing it leaves all
golden series bit-for-bit unchanged (guarded).

The ledger doubles as the **DoS-amplification meter**: bind the
adversary's identity set (:meth:`PeerHealthLedger.bind_adversary`) and
it prices what the honest side paid per attacker byte — bytes scanned
decoding attacker frames plus bytes of honest frames sent to attackers,
both of which stop accruing once quarantine cuts the links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro.errors import ConfigError

#: Offence kinds the ledger scores.
OFFENCE_DECODE = "decode_failure"
OFFENCE_OVERSIZE = "oversize_frame"
OFFENCE_TIMEOUT = "timeout"

_OFFENCES = (OFFENCE_DECODE, OFFENCE_OVERSIZE, OFFENCE_TIMEOUT)


@dataclass(frozen=True)
class HealthPolicy:
    """Scoring weights, decay, and the quarantine hysteresis band.

    Defaults are sized for the wire-fault experiments: a peer
    corrupting most of its frames (a few decode failures per cycle)
    crosses ``quarantine_threshold`` within a cycle or two of attack
    start, while honest peers under ~10% ambient link noise plateau
    well below it (steady-state score ≈ rate / (1 - decay)).
    ``timeout_weight`` is deliberately small: timeouts also happen to
    honest peers on slow links, so silence is weaker evidence than
    garbage.
    """

    decode_failure_weight: float = 1.0
    oversize_weight: float = 1.0
    timeout_weight: float = 0.25
    decay: float = 0.7
    quarantine_threshold: float = 3.0
    release_threshold: float = 0.75

    def __post_init__(self) -> None:
        for name in (
            "decode_failure_weight", "oversize_weight", "timeout_weight"
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        if not 0.0 < self.decay < 1.0:
            raise ConfigError("decay must be in (0, 1)")
        if self.quarantine_threshold <= 0:
            raise ConfigError("quarantine_threshold must be positive")
        if not 0 <= self.release_threshold < self.quarantine_threshold:
            raise ConfigError(
                "release_threshold must sit below quarantine_threshold "
                "(the hysteresis band)"
            )


class PeerHealthLedger:
    """Scores peers' wire behaviour; quarantines the persistently faulty."""

    def __init__(self, policy: Optional[HealthPolicy] = None) -> None:
        self.policy = policy or HealthPolicy()
        self._scores: Dict[Any, float] = {}
        self._quarantined: set = set()
        self._cycle = 0
        #: peer -> {offence kind: count}; only misbehaving peers appear.
        self.offences: Dict[Any, Dict[str, int]] = {}
        #: peer -> cycle at which it was first quarantined.
        self.quarantined_at: Dict[Any, int] = {}
        self.quarantine_events = 0
        self.release_events = 0
        # --- DoS-amplification meter (active once bound) -------------
        self._adversary: FrozenSet[Any] = frozenset()
        #: Bytes of frames the adversary put on the wire.
        self.adversary_bytes_sent = 0
        #: Bytes of adversary frames honest receivers actually scanned
        #: (decode attempts — quarantined frames are refused unscanned).
        self.adversary_bytes_scanned = 0
        #: Bytes of honest frames sent *to* adversary peers.
        self.honest_bytes_to_adversary = 0

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------

    def _record(self, peer: Any, offence: str, weight: float) -> None:
        counts = self.offences.get(peer)
        if counts is None:
            counts = dict.fromkeys(_OFFENCES, 0)
            self.offences[peer] = counts
        counts[offence] += 1
        score = self._scores.get(peer, 0.0) + weight
        self._scores[peer] = score
        if (
            peer not in self._quarantined
            and score >= self.policy.quarantine_threshold
        ):
            self._quarantined.add(peer)
            self.quarantine_events += 1
            self.quarantined_at.setdefault(peer, self._cycle)

    def record_decode_failure(self, peer: Any) -> None:
        """A frame claiming to come from ``peer`` failed to decode."""
        self._record(peer, OFFENCE_DECODE, self.policy.decode_failure_weight)

    def record_oversize(self, peer: Any) -> None:
        """A frame from ``peer`` blew past the decoder's size ceiling."""
        self._record(peer, OFFENCE_OVERSIZE, self.policy.oversize_weight)

    def record_timeout(self, peer: Any) -> None:
        """``peer`` processed a request but its reply never made it."""
        self._record(peer, OFFENCE_TIMEOUT, self.policy.timeout_weight)

    def score(self, peer: Any) -> float:
        return self._scores.get(peer, 0.0)

    def is_quarantined(self, peer: Any) -> bool:
        return peer in self._quarantined

    def quarantined_peers(self) -> set:
        return set(self._quarantined)

    def tick(self, cycle: int) -> None:
        """Cycle-boundary decay + hysteresis release (no randomness).

        Called by both schedulers through
        :meth:`~repro.sim.network.Network.health_tick`.
        """
        self._cycle = cycle
        decay = self.policy.decay
        release = self.policy.release_threshold
        forgotten = []
        for peer, score in self._scores.items():
            score *= decay
            if score < 1e-9:
                forgotten.append(peer)
                continue
            self._scores[peer] = score
            if peer in self._quarantined and score <= release:
                self._quarantined.discard(peer)
                self.release_events += 1
        for peer in forgotten:
            del self._scores[peer]
            if peer in self._quarantined:
                self._quarantined.discard(peer)
                self.release_events += 1

    # ------------------------------------------------------------------
    # DoS-amplification meter
    # ------------------------------------------------------------------

    def bind_adversary(self, ids: Iterable[Any]) -> None:
        """Tell the meter which peers belong to the adversary.

        Experiments bind ``engine.malicious_ids`` after building the
        overlay; unbound, the meter's counters simply stay zero (the
        quarantine machinery never needs the set — it judges behaviour,
        not identity).
        """
        self._adversary = frozenset(ids)

    def note_sent(self, src: Any, dst: Any, nbytes: int) -> None:
        """Account one frame of ``nbytes`` travelling ``src`` → ``dst``."""
        adversary = self._adversary
        if not adversary:
            return
        if src in adversary:
            self.adversary_bytes_sent += nbytes
        elif dst in adversary:
            self.honest_bytes_to_adversary += nbytes

    def note_scanned(self, src: Any, nbytes: int) -> None:
        """An honest receiver decode-scanned ``nbytes`` from ``src``."""
        if src in self._adversary:
            self.adversary_bytes_scanned += nbytes

    def amplification(self) -> float:
        """Honest bytes paid per adversary byte sent (the DoS budget).

        Work the adversary extracted, per byte it spent: the decode
        scans its frames forced (``adversary_bytes_scanned``) plus the
        honest frames it was sent (``honest_bytes_to_adversary``),
        divided by everything it transmitted.  Quarantine caps the
        numerator — refused links are neither scanned nor replied to —
        so a working defense drives this ratio down as fault severity
        rises.
        """
        if not self.adversary_bytes_sent:
            return 0.0
        paid = self.adversary_bytes_scanned + self.honest_bytes_to_adversary
        return paid / self.adversary_bytes_sent

    def offence_total(self, offence: str) -> int:
        """Network-wide count of one offence kind."""
        return sum(counts[offence] for counts in self.offences.values())
