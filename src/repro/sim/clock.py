"""Simulated time.

The paper uses *cycles* as the unit of protocol time and wall-clock
timestamps inside descriptors (§II-A, §IV-A).  :class:`SimClock` provides
both: a cycle counter, and a wall-clock reading derived from it through a
configurable gossip period (the paper suggests real periods of 10–60 s).

Real deployments add one more wrinkle: no two wall clocks agree.
:class:`ClockDrift` models a node's deviation from true time (constant
skew plus linear drift) and :class:`DriftedClock` presents the shared
simulation clock *through* that deviation — descriptor timestamps, the
§IV-B frequency self-guard, and timestamp-acceptance checks of a
drifting node all read its local perception of time, while cycle
numbers (pure protocol bookkeeping) stay global.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError


class SimClock:
    """Cycle counter plus derived wall-clock time.

    ``period_seconds`` is the prescribed gossip period: the wall-clock
    span of one cycle.  The frequency check in SecureCyclon compares
    descriptor timestamps against this period, so protocol code reads it
    from the clock rather than carrying a separate constant.
    """

    def __init__(self, period_seconds: float = 10.0, start_cycle: int = 0) -> None:
        if period_seconds <= 0:
            raise SimulationError("gossip period must be positive")
        if start_cycle < 0:
            raise SimulationError("start cycle must be non-negative")
        self._period = float(period_seconds)
        self._cycle = int(start_cycle)
        # Wall-clock reading, maintained eagerly: protocol code checks
        # timestamps against "now" for every received descriptor, so
        # the current time is kept as a plain attribute instead of
        # being recomputed per call.
        self.now_s = self._cycle * self._period

    @property
    def cycle(self) -> int:
        """The current cycle number."""
        return self._cycle

    @property
    def period_seconds(self) -> float:
        """Wall-clock length of one cycle (the gossip period)."""
        return self._period

    def now(self) -> float:
        """Current wall-clock time in seconds since simulation start."""
        return self.now_s

    def timestamp_for_cycle(self, cycle: int) -> float:
        """Wall-clock timestamp at the start of ``cycle``."""
        return cycle * self._period

    def cycle_of_timestamp(self, timestamp: float) -> int:
        """The cycle during which ``timestamp`` falls."""
        return int(timestamp // self._period)

    def advance(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new cycle."""
        if cycles < 0:
            raise SimulationError("cannot advance the clock backwards")
        self._cycle += cycles
        self.now_s = self._cycle * self._period
        return self._cycle

    def advance_to(self, time_s: float, cycle: Optional[int] = None) -> int:
        """Advance to an absolute wall-clock reading (event runtime).

        The cycle counter follows as ``floor(time_s / period)``, so
        protocol code that thinks in cycles (frequency checks, cache
        horizons) keeps working when time moves continuously between
        cycle boundaries.  Callers sitting exactly on a boundary they
        computed as ``cycle * period`` pass ``cycle`` explicitly to
        sidestep float division jitter.  Returns the new cycle.
        """
        if time_s < self.now_s:
            raise SimulationError("cannot advance the clock backwards")
        self.now_s = float(time_s)
        self._cycle = int(time_s // self._period) if cycle is None else cycle
        return self._cycle


@dataclass(frozen=True)
class ClockDrift:
    """A node's wall-clock deviation from true simulation time.

    ``skew_s`` is a constant offset (the clock was set wrong);
    ``rate`` is linear drift in seconds gained per second of true time
    (the crystal runs fast for positive values, slow for negative).
    A perceived reading is ``true + skew_s + rate * true``.

    ``rate`` must stay above -1: a clock that runs backwards would let
    perceived time decrease while true time advances, and every
    monotonicity assumption in the protocol (mint spacing, cache
    horizons) would silently break.
    """

    skew_s: float = 0.0
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= -1.0:
            raise SimulationError("drift rate must be > -1 (clock must run forwards)")

    @property
    def is_zero(self) -> bool:
        return self.skew_s == 0.0 and self.rate == 0.0

    def perceive(self, true_s: float) -> float:
        """The drifting clock's reading at true time ``true_s``."""
        return true_s + self.skew_s + self.rate * true_s

    def offset_at(self, true_s: float) -> float:
        """How far the perceived reading deviates at ``true_s``."""
        return self.skew_s + self.rate * true_s


@dataclass(frozen=True)
class DriftPlan:
    """A population-level drift envelope for scenario builders.

    Each node draws an independent :class:`ClockDrift` with skew in
    ``[-max_skew_s, +max_skew_s]`` and rate in ``[-max_rate, +max_rate]``
    (uniform).  ``bound_at(horizon_s)`` is the worst-case deviation any
    one clock reaches by ``horizon_s`` — size the protocol's timestamp
    and frequency tolerances from it (two drifting clocks can disagree
    by up to twice this bound).
    """

    max_skew_s: float = 0.0
    max_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.max_skew_s < 0:
            raise SimulationError("max_skew_s must be non-negative")
        if not 0.0 <= self.max_rate < 1.0:
            raise SimulationError("max_rate must be in [0, 1)")

    def draw(self, rng) -> ClockDrift:
        """One node's drift, sampled from the envelope."""
        return ClockDrift(
            skew_s=rng.uniform(-self.max_skew_s, self.max_skew_s),
            rate=rng.uniform(-self.max_rate, self.max_rate),
        )

    def bound_at(self, horizon_s: float) -> float:
        """Max |perceived - true| any drawn clock shows by ``horizon_s``."""
        return self.max_skew_s + self.max_rate * max(0.0, horizon_s)


class DriftedClock:
    """A node-local view of the shared :class:`SimClock`.

    Presents the same interface protocol nodes consume (``now_s``,
    ``now()``, ``cycle``, ``period_seconds``) but filters wall-clock
    readings through a :class:`ClockDrift`.  The cycle counter is *not*
    drifted: cycles are protocol bookkeeping driven by the engine, not
    something a node measures off its own crystal.

    Drifted clocks are read-only — only the engine advances time, and
    it does so on the underlying shared clock.
    """

    __slots__ = ("_base", "drift")

    def __init__(self, base: SimClock, drift: ClockDrift) -> None:
        self._base = base
        self.drift = drift

    @property
    def now_s(self) -> float:
        return self.drift.perceive(self._base.now_s)

    def now(self) -> float:
        return self.now_s

    @property
    def cycle(self) -> int:
        return self._base.cycle

    @property
    def period_seconds(self) -> float:
        return self._base.period_seconds

    def timestamp_for_cycle(self, cycle: int) -> float:
        return self.drift.perceive(self._base.timestamp_for_cycle(cycle))

    def cycle_of_timestamp(self, timestamp: float) -> int:
        # Inverse of timestamp_for_cycle: a *perceived* reading maps
        # back through the drift before the cycle division, keeping the
        # round-trip invariant the un-drifted clock pins.
        true_s = (timestamp - self.drift.skew_s) / (1.0 + self.drift.rate)
        return self._base.cycle_of_timestamp(true_s)
