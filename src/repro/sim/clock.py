"""Simulated time.

The paper uses *cycles* as the unit of protocol time and wall-clock
timestamps inside descriptors (§II-A, §IV-A).  :class:`SimClock` provides
both: a cycle counter, and a wall-clock reading derived from it through a
configurable gossip period (the paper suggests real periods of 10–60 s).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError


class SimClock:
    """Cycle counter plus derived wall-clock time.

    ``period_seconds`` is the prescribed gossip period: the wall-clock
    span of one cycle.  The frequency check in SecureCyclon compares
    descriptor timestamps against this period, so protocol code reads it
    from the clock rather than carrying a separate constant.
    """

    def __init__(self, period_seconds: float = 10.0, start_cycle: int = 0) -> None:
        if period_seconds <= 0:
            raise SimulationError("gossip period must be positive")
        if start_cycle < 0:
            raise SimulationError("start cycle must be non-negative")
        self._period = float(period_seconds)
        self._cycle = int(start_cycle)
        # Wall-clock reading, maintained eagerly: protocol code checks
        # timestamps against "now" for every received descriptor, so
        # the current time is kept as a plain attribute instead of
        # being recomputed per call.
        self.now_s = self._cycle * self._period

    @property
    def cycle(self) -> int:
        """The current cycle number."""
        return self._cycle

    @property
    def period_seconds(self) -> float:
        """Wall-clock length of one cycle (the gossip period)."""
        return self._period

    def now(self) -> float:
        """Current wall-clock time in seconds since simulation start."""
        return self.now_s

    def timestamp_for_cycle(self, cycle: int) -> float:
        """Wall-clock timestamp at the start of ``cycle``."""
        return cycle * self._period

    def cycle_of_timestamp(self, timestamp: float) -> int:
        """The cycle during which ``timestamp`` falls."""
        return int(timestamp // self._period)

    def advance(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new cycle."""
        if cycles < 0:
            raise SimulationError("cannot advance the clock backwards")
        self._cycle += cycles
        self.now_s = self._cycle * self._period
        return self._cycle

    def advance_to(self, time_s: float, cycle: Optional[int] = None) -> int:
        """Advance to an absolute wall-clock reading (event runtime).

        The cycle counter follows as ``floor(time_s / period)``, so
        protocol code that thinks in cycles (frequency checks, cache
        horizons) keeps working when time moves continuously between
        cycle boundaries.  Callers sitting exactly on a boundary they
        computed as ``cycle * period`` pass ``cycle`` explicitly to
        sidestep float division jitter.  Returns the new cycle.
        """
        if time_s < self.now_s:
            raise SimulationError("cannot advance the clock backwards")
        self.now_s = float(time_s)
        self._cycle = int(time_s // self._period) if cycle is None else cycle
        return self._cycle
