"""Wire codec for the legacy-Cyclon shuffle messages.

Registers :class:`~repro.cyclon.node.CyclonRequest` and
:class:`~repro.cyclon.node.CyclonReply` with the whole-message framing
layer (:mod:`repro.core.codec`), so the
:class:`~repro.sim.transport.WireTransport` can round-trip classic
shuffles through real bytes exactly like SecureCyclon dialogues.

A legacy descriptor is unauthenticated — node ID, address, age — which
makes the record trivial, except that legacy node IDs are ``Any``: the
scenario builders use public keys (the paper's §II-A "ID = public key"
convention), while unit tests use plain ints and strings.  The ID field
is therefore tagged: ``0`` a 32-byte :class:`~repro.crypto.keys.
PublicKey` digest, ``1`` a signed 64-bit integer, ``2`` a UTF-8 string.
Anything else cannot travel a byte-accurate wire and raises
:class:`~repro.errors.CodecError` at encode time — by design: an ID the
codec cannot represent is an ID a real deployment could not route.

Imported for its registration side effect by :mod:`repro.cyclon`, so
any process that can *build* a shuffle message can also frame it.
"""

from __future__ import annotations

from typing import Any

from repro.core.codec import (
    MessageReader,
    MessageWriter,
    register_message_codec,
)
from repro.crypto.keys import PublicKey
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.node import CyclonReply, CyclonRequest
from repro.errors import CodecError
from repro.sim.network import NetworkAddress

#: Extension type bytes (1-8 are the SecureCyclon dialogue).
CYCLON_REQUEST_CODE = 9
CYCLON_REPLY_CODE = 10

_ID_PUBLIC_KEY = 0
_ID_INT = 1
_ID_STR = 2

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _write_node_id(writer: MessageWriter, node_id: Any) -> None:
    if isinstance(node_id, PublicKey):
        writer.u8(_ID_PUBLIC_KEY)
        writer.raw(node_id.digest)
    elif isinstance(node_id, bool):
        # bool is an int subclass; a True/False node ID is a caller bug,
        # not something to smuggle through as 1/0.
        raise CodecError(f"cannot encode node id {node_id!r}")
    elif isinstance(node_id, int):
        if not _I64_MIN <= node_id <= _I64_MAX:
            raise CodecError(f"node id {node_id} does not fit in 64 bits")
        writer.u8(_ID_INT)
        writer.i64(node_id)
    elif isinstance(node_id, str):
        if len(node_id.encode("utf-8")) > 0xFFFF:
            raise CodecError("string node id exceeds the u16 length prefix")
        writer.u8(_ID_STR)
        writer.string(node_id)
    else:
        raise CodecError(
            f"cannot encode node id of type {type(node_id).__name__}; "
            "wire-mode legacy Cyclon supports PublicKey, int, and str IDs"
        )


def _read_node_id(reader: MessageReader) -> Any:
    tag = reader.u8()
    if tag == _ID_PUBLIC_KEY:
        return PublicKey(reader.fixed(32))
    if tag == _ID_INT:
        return reader.i64()
    if tag == _ID_STR:
        return reader.string()
    raise CodecError(f"unknown node id tag {tag}")


def _write_cyclon_descriptor(
    writer: MessageWriter, descriptor: CyclonDescriptor
) -> None:
    _write_node_id(writer, descriptor.node_id)
    # host/port are range-checked by NetworkAddress; age is only
    # validated non-negative at construction, so its width is enforced
    # here — every encode-side rejection must be the typed error, never
    # a struct.error leaking out of Channel.request.
    if descriptor.age > 0xFFFFFFFF:
        raise CodecError(f"descriptor age {descriptor.age} exceeds u32")
    writer.u32(descriptor.address.host)
    writer.u16(descriptor.address.port)
    writer.u32(descriptor.age)


def _encode_shuffle(writer: MessageWriter, message: Any) -> None:
    if len(message.descriptors) > 0xFFFF:
        raise CodecError("shuffle exceeds the u16 descriptor count")
    writer.u16(len(message.descriptors))
    for descriptor in message.descriptors:
        _write_cyclon_descriptor(writer, descriptor)


def _read_cyclon_descriptor(reader: MessageReader) -> CyclonDescriptor:
    node_id = _read_node_id(reader)
    host = reader.u32()
    port = reader.u16()
    age = reader.u32()
    return CyclonDescriptor(
        node_id=node_id,
        address=NetworkAddress(host=host, port=port),
        age=age,
    )


def _decode_request(reader: MessageReader) -> CyclonRequest:
    return CyclonRequest(
        descriptors=tuple(
            _read_cyclon_descriptor(reader) for _ in range(reader.u16())
        )
    )


def _decode_reply(reader: MessageReader) -> CyclonReply:
    return CyclonReply(
        descriptors=tuple(
            _read_cyclon_descriptor(reader) for _ in range(reader.u16())
        )
    )


register_message_codec(
    CyclonRequest, CYCLON_REQUEST_CODE, _encode_shuffle, _decode_request
)
register_message_codec(
    CyclonReply, CYCLON_REPLY_CODE, _encode_shuffle, _decode_reply
)
