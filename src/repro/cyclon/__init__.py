"""The legacy Cyclon peer-sampling protocol (paper §II-B).

This is the baseline SecureCyclon hardens: age-based partial views,
oldest-neighbor gossip, and random descriptor swaps.  It reproduces the
properties the paper recaps — random-graph-like overlays, tightly
bounded indegrees (Fig 2) — and its total collapse under the hub attack
(Fig 3).
"""

from repro.cyclon.config import CyclonConfig
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.view import CyclonView
from repro.cyclon.node import CyclonNode, CyclonRequest, CyclonReply
# Imported for its side effect: registers the shuffle messages with the
# whole-message framing layer so the wire transport can carry them.
from repro.cyclon import codec as _codec  # noqa: F401

__all__ = [
    "CyclonConfig",
    "CyclonDescriptor",
    "CyclonView",
    "CyclonNode",
    "CyclonRequest",
    "CyclonReply",
]
