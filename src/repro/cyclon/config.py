"""Configuration for the legacy Cyclon protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import _validate_verification, resolve_verification
from repro.errors import ConfigError
from repro.sim.retry import RetryPolicy
from repro.sim.transport import resolve_transport, validate_transport


@dataclass(frozen=True)
class CyclonConfig:
    """Cyclon parameters, named as in the paper.

    ``view_length`` is ℓ, the fixed number of neighbors each node keeps;
    ``swap_length`` is s, the number of descriptors exchanged per gossip.
    The paper's experiments use ℓ ∈ {20, 50} and s ∈ {3, 5, 8, 10}.

    ``retry`` governs what an initiator does when a shuffle times out
    under the event runtime (:class:`~repro.sim.retry.RetryPolicy`); a
    retry initiates a fresh shuffle with the next oldest neighbor.
    Inert under the cycle runtime, which has no timeouts.

    ``verification`` mirrors the SecureCyclon knob so harnesses can set
    one value across both protocol configs (and the
    ``REPRO_VERIFICATION`` override applies uniformly).  Legacy Cyclon
    descriptors carry no ownership chains, so the knob is validated but
    behaviourally inert here — there is nothing to verify.

    ``transport`` also mirrors SecureCyclon (one value across both
    configs; ``REPRO_TRANSPORT`` applies uniformly) and is *not* inert:
    under ``"wire"`` every shuffle request/reply is framed through the
    legacy-Cyclon wire codec (:mod:`repro.cyclon.codec`) and receivers
    rebuild the descriptors from bytes.
    """

    view_length: int = 20
    swap_length: int = 3
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    verification: Optional[str] = None
    transport: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_verification(self.verification)
        validate_transport(self.transport)
        if self.view_length < 1:
            raise ConfigError("view_length must be >= 1")
        if self.swap_length < 1:
            raise ConfigError("swap_length must be >= 1")
        if self.swap_length > self.view_length:
            raise ConfigError(
                f"swap_length ({self.swap_length}) cannot exceed "
                f"view_length ({self.view_length})"
            )

    def effective_verification(self) -> str:
        """The resolved verification mode (inert for legacy Cyclon)."""
        return resolve_verification(self.verification)

    def effective_transport(self) -> str:
        """The resolved transport mode (``REPRO_TRANSPORT`` applies).

        Resolved at call time so the environment override can flip an
        already-built default config, like ``effective_verification``.
        """
        return resolve_transport(self.transport)
