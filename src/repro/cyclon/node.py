"""The legacy Cyclon protocol node (paper §II-B).

Each cycle a node ages its view, redeems its *oldest* descriptor to
initiate a push-pull exchange with that neighbor, and swaps ``s``
descriptors: a fresh self-descriptor plus ``s - 1`` random entries
against ``s`` random entries of the partner.  Nothing is authenticated,
so this node trusts whatever descriptors it receives — the property the
hub attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from repro.cyclon.config import CyclonConfig
from repro.cyclon.descriptor import CyclonDescriptor
from repro.cyclon.view import CyclonView
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped, MessageTimeout
from repro.sim.engine import ProtocolNode
from repro.sim.network import Network, NetworkAddress
from repro.sim.retry import drive_attempts


@dataclass(frozen=True)
class CyclonRequest:
    """Initiator→partner: the descriptors offered for the swap."""

    descriptors: Tuple[CyclonDescriptor, ...]


@dataclass(frozen=True)
class CyclonReply:
    """Partner→initiator: the descriptors returned in the swap."""

    descriptors: Tuple[CyclonDescriptor, ...]


class CyclonNode(ProtocolNode):
    """A correct (honest) Cyclon participant."""

    def __init__(
        self,
        node_id: Any,
        address: NetworkAddress,
        config: CyclonConfig,
        rng,
        trace=None,
    ) -> None:
        self.node_id = node_id
        self.address = address
        self.config = config
        self.rng = rng
        self.trace = trace
        self.view = CyclonView(node_id, config.view_length)
        self.current_cycle = 0

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Advance the node clock and age every descriptor in the view."""
        self.current_cycle = cycle
        self.view.increment_ages()

    def run_cycle(self, network: Network) -> None:
        """Initiate one classic Cyclon shuffle with the oldest neighbor.

        A shuffle that times out (event runtime) may be retried with
        the next oldest neighbor, per the configured
        :class:`~repro.sim.retry.RetryPolicy` — immediately or after a
        scheduled backoff.  Cyclon has no minting rule, so a retried
        shuffle simply runs the protocol again against a new partner.
        """
        drive_attempts(
            policy=self.config.retry,
            attempt=lambda: self._shuffle_once(network),
            network=network,
            node_id=self.node_id,
            emit=self._emit,
            prefix="cyclon",
        )

    def _shuffle_once(self, network: Network) -> bool:
        """One shuffle attempt; True iff the exchange timed out (the
        only failure a retry policy may re-attempt)."""
        oldest = self.view.oldest()
        if oldest is None:
            return False
        self.view.remove(oldest)
        try:
            channel = network.connect(self.node_id, oldest.node_id)
        except PeerUnreachable:
            # Paper §V-A case 1: drop the unreachable neighbor's
            # descriptor and skip this cycle.
            self._emit("cyclon.partner_unreachable", partner=oldest.node_id)
            return False

        outgoing = self._select_outgoing()
        try:
            reply = channel.request(CyclonRequest(tuple(outgoing)))
        except MessageDropped as failure:
            # Lost or (event runtime) too late — the same partial
            # failure either way: whether or not the partner processed
            # the request, classic Cyclon lets the initiator retain
            # what it sent (§II-B).  Only the trace distinguishes.
            self.view.fill_from(d for d in outgoing if d.node_id != self.node_id)
            if isinstance(failure, MessageTimeout):
                self._emit(
                    "cyclon.exchange_timeout",
                    partner=oldest.node_id,
                    delivered=failure.delivered,
                )
                return True
            self._emit("cyclon.exchange_dropped", partner=oldest.node_id)
            return False
        self._integrate(reply.descriptors, sent=outgoing)
        return False

    def receive(self, sender_id: Any, payload: Any) -> Any:
        """Answer an incoming Cyclon shuffle request."""
        if isinstance(payload, CyclonRequest):
            return self._handle_request(sender_id, payload)
        raise TypeError(f"unexpected payload {type(payload).__name__}")

    # ------------------------------------------------------------------
    # protocol steps
    # ------------------------------------------------------------------

    def self_descriptor(self) -> CyclonDescriptor:
        """A brand-new descriptor of this node (age zero)."""
        return CyclonDescriptor(node_id=self.node_id, address=self.address, age=0)

    def _select_outgoing(self) -> List[CyclonDescriptor]:
        """Fresh self-descriptor plus ``s - 1`` random view entries."""
        extras = self.view.pop_random(self.config.swap_length - 1, self.rng)
        return [self.self_descriptor()] + extras

    def _handle_request(self, sender_id: Any, request: CyclonRequest) -> CyclonReply:
        outgoing = self.view.pop_random(self.config.swap_length, self.rng)
        self._integrate(request.descriptors, sent=outgoing)
        return CyclonReply(tuple(outgoing))

    def _integrate(
        self,
        received: Sequence[CyclonDescriptor],
        sent: Sequence[CyclonDescriptor],
    ) -> None:
        """Merge a received batch, then backfill with sent ones.

        Vanilla Cyclon semantics for a batch of up to ``s``: received
        descriptors fill the slots freed by the swap (duplicates keep
        the younger copy), and the node retains what it sent when slots
        remain (§II-B).  Descriptors beyond the free capacity — which
        only a protocol violator sends — are absorbed by displacing
        strictly older entries; the protocol has no validation to
        refuse them.
        """
        overflow: List[CyclonDescriptor] = []
        for descriptor in received:
            if not self.view.insert(descriptor):
                overflow.append(descriptor)
        self.view.fill_from(d for d in sent if d.node_id != self.node_id)
        for descriptor in overflow:
            self.view.replace_oldest_if_younger(descriptor)

    def _emit(self, kind: str, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.emit(self.current_cycle, kind, node=self.node_id, **detail)
