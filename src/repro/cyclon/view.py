"""The Cyclon partial view: a bounded, indexed set of descriptors.

Invariants maintained by this class and checked in tests:

* at most ``capacity`` (ℓ) entries;
* at most one entry per target node ID;
* never an entry pointing at the view's owner.

Internally the view is *not* a plain list of descriptors.  Ageing every
entry each cycle (the start-of-cycle housekeeping of §II-B) would cost
N×ℓ descriptor allocations per simulated cycle, and membership tests,
removals and the oldest-entry scan would all be O(ℓ) with attribute
comparisons.  Instead the view keeps:

* an **epoch counter** — ``increment_ages`` is O(1): it bumps the epoch
  and every entry's effective age becomes ``stored age + (epoch −
  stored-at epoch)``.  Descriptor objects with the correct age are
  materialised lazily, only when an entry is handed out, and the
  materialisation is cached per epoch;
* a **node-ID index** — ``contains_id``/``entry_for``/``remove`` are
  O(1) dictionary operations;
* a **maintained oldest pointer** — ``oldest()`` reuses the previous
  answer unless a mutation invalidated it, and a recomputation is a
  scan over plain integers rather than descriptor attributes.

The observable behaviour (entry order, RNG consumption, tie-breaking)
is bit-for-bit identical to the original list implementation; the
property tests in ``tests/properties/test_indexed_view_equivalence.py``
check the two against each other under randomised operation sequences.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.cyclon.descriptor import CyclonDescriptor

# Internal entry record layout (a list, for cheap in-place mutation):
# [descriptor-as-of-epoch, epoch-at-materialisation].  The entry's
# effective age at view epoch E is  descriptor.age + (E - record[1]).
_DESC = 0
_EPOCH = 1


class CyclonView:
    """Partial view of the overlay held by one Cyclon node."""

    def __init__(self, owner_id: Any, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be >= 1")
        self.owner_id = owner_id
        self.capacity = capacity
        self._records: List[list] = []
        self._by_id: Dict[Any, list] = {}
        self._epoch = 0
        # Cached oldest record; None means "unknown, recompute".
        self._oldest_record: Optional[list] = None

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _materialize(self, record: list) -> CyclonDescriptor:
        """The record's descriptor carrying its current effective age."""
        behind = self._epoch - record[_EPOCH]
        if behind:
            record[_DESC] = replace(
                record[_DESC], age=record[_DESC].age + behind
            )
            record[_EPOCH] = self._epoch
        return record[_DESC]

    def _effective_age(self, record: list) -> int:
        return record[_DESC].age + (self._epoch - record[_EPOCH])

    def _rank(self, record: list) -> int:
        """Age-ordering key, constant under epoch advancement."""
        return record[_DESC].age - record[_EPOCH]

    def _find_oldest(self) -> Optional[list]:
        """First record (in view order) with the maximal effective age.

        Tie-break rule, pinned deterministically: among entries of equal
        age the one at the earliest view position wins — i.e. the entry
        that has survived in the view the longest.  (The original list
        implementation inherited exactly this behaviour from ``max``;
        it is now part of the documented contract, because experiment
        trajectories depend on it.)
        """
        records = self._records
        if not records:
            return None
        best = records[0]
        best_rank = best[_DESC].age - best[_EPOCH]
        for record in records:
            rank = record[_DESC].age - record[_EPOCH]
            if rank > best_rank:
                best = record
                best_rank = rank
        return best

    def _drop_record(self, record: list) -> None:
        """Remove ``record`` from the list, the index and the caches."""
        self._records.remove(record)
        del self._by_id[record[_DESC].node_id]
        if self._oldest_record is record:
            self._oldest_record = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CyclonDescriptor]:
        for record in list(self._records):
            yield self._materialize(record)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._records)

    def contains_id(self, node_id: Any) -> bool:
        return node_id in self._by_id

    def entry_for(self, node_id: Any) -> Optional[CyclonDescriptor]:
        record = self._by_id.get(node_id)
        if record is None:
            return None
        return self._materialize(record)

    def neighbor_ids(self) -> List[Any]:
        return [record[_DESC].node_id for record in self._records]

    def oldest(self) -> Optional[CyclonDescriptor]:
        """The entry with the highest age.

        Ties break to the earliest view position (the longest-surviving
        entry) — see :meth:`_find_oldest` for why the rule is pinned.
        """
        record = self._oldest_record
        if record is None:
            record = self._find_oldest()
            self._oldest_record = record
        if record is None:
            return None
        return self._materialize(record)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def increment_ages(self) -> None:
        """Age every entry by one cycle (start-of-cycle housekeeping).

        O(1): entries materialise their new age lazily on access.
        """
        self._epoch += 1

    def remove(self, descriptor: CyclonDescriptor) -> bool:
        """Remove the entry for ``descriptor.node_id``; True if present."""
        record = self._by_id.get(descriptor.node_id)
        if record is None:
            return False
        self._drop_record(record)
        return True

    def pop_random(self, count: int, rng) -> List[CyclonDescriptor]:
        """Remove and return up to ``count`` uniformly random entries."""
        records = self._records
        count = min(count, len(records))
        if count == 0:
            return []
        chosen_indices = rng.sample(range(len(records)), count)
        chosen = [records[i] for i in chosen_indices]
        for index in sorted(chosen_indices, reverse=True):
            del records[index]
        oldest = self._oldest_record
        for record in chosen:
            del self._by_id[record[_DESC].node_id]
            if record is oldest:
                self._oldest_record = None
        return [self._materialize(record) for record in chosen]

    def insert(self, descriptor: CyclonDescriptor) -> bool:
        """Insert ``descriptor`` respecting the view invariants.

        Self-links are rejected.  A duplicate target keeps whichever
        copy is younger.  Returns ``True`` if the view changed.
        """
        if descriptor.node_id == self.owner_id:
            return False
        existing = self._by_id.get(descriptor.node_id)
        if existing is not None:
            if descriptor.age < self._effective_age(existing):
                existing[_DESC] = descriptor
                existing[_EPOCH] = self._epoch
                if self._oldest_record is existing:
                    self._oldest_record = None
                return True
            return False
        if len(self._records) >= self.capacity:
            return False
        record = [descriptor, self._epoch]
        self._records.append(record)
        self._by_id[descriptor.node_id] = record
        oldest = self._oldest_record
        if oldest is not None and self._rank(record) > self._rank(oldest):
            self._oldest_record = record
        return True

    def replace_oldest_if_younger(self, descriptor: CyclonDescriptor) -> bool:
        """Replace the oldest entry when ``descriptor`` is younger.

        This is the healer-style absorption of *supplementary*
        descriptors (more than the swap length): legacy Cyclon performs
        no validation, so a peer that ships an oversized batch of fresh
        descriptors displaces the receiver's oldest links.  Honest
        exchanges never produce extras, so this path only fires under
        attack (see DESIGN.md on the Fig 3 attack model).
        """
        if descriptor.node_id == self.owner_id:
            return False
        if descriptor.node_id in self._by_id:
            return False
        record = self._oldest_record
        if record is None:
            record = self._find_oldest()
            self._oldest_record = record
        if record is None or descriptor.age >= self._effective_age(record):
            return False
        self._drop_record(record)
        new_record = [descriptor, self._epoch]
        self._records.append(new_record)
        self._by_id[descriptor.node_id] = new_record
        return True

    def fill_from(self, leftovers: Iterable[CyclonDescriptor]) -> int:
        """Backfill empty slots from ``leftovers`` (sent-but-unswapped).

        Implements the paper's rule that a node "is free to retain the
        descriptors it sent to the other party" when slots remain.
        Returns the number of descriptors re-inserted.
        """
        inserted = 0
        for descriptor in leftovers:
            if self.free_slots <= 0:
                break
            if self.insert(descriptor):
                inserted += 1
        return inserted
