"""The Cyclon partial view: a bounded list of descriptors.

Invariants maintained by this class and checked in tests:

* at most ``capacity`` (ℓ) entries;
* at most one entry per target node ID;
* never an entry pointing at the view's owner.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

from repro.cyclon.descriptor import CyclonDescriptor


class CyclonView:
    """Partial view of the overlay held by one Cyclon node."""

    def __init__(self, owner_id: Any, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be >= 1")
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries: List[CyclonDescriptor] = []

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CyclonDescriptor]:
        return iter(self._entries)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def contains_id(self, node_id: Any) -> bool:
        return any(entry.node_id == node_id for entry in self._entries)

    def entry_for(self, node_id: Any) -> Optional[CyclonDescriptor]:
        for entry in self._entries:
            if entry.node_id == node_id:
                return entry
        return None

    def neighbor_ids(self) -> List[Any]:
        return [entry.node_id for entry in self._entries]

    def oldest(self) -> Optional[CyclonDescriptor]:
        """The entry with the highest age (ties broken arbitrarily)."""
        if not self._entries:
            return None
        return max(self._entries, key=lambda entry: entry.age)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def increment_ages(self) -> None:
        """Age every entry by one cycle (start-of-cycle housekeeping)."""
        self._entries = [entry.aged() for entry in self._entries]

    def remove(self, descriptor: CyclonDescriptor) -> bool:
        """Remove the entry for ``descriptor.node_id``; True if present."""
        for index, entry in enumerate(self._entries):
            if entry.node_id == descriptor.node_id:
                del self._entries[index]
                return True
        return False

    def pop_random(self, count: int, rng) -> List[CyclonDescriptor]:
        """Remove and return up to ``count`` uniformly random entries."""
        count = min(count, len(self._entries))
        if count == 0:
            return []
        chosen_indices = rng.sample(range(len(self._entries)), count)
        chosen = [self._entries[i] for i in chosen_indices]
        for index in sorted(chosen_indices, reverse=True):
            del self._entries[index]
        return chosen

    def insert(self, descriptor: CyclonDescriptor) -> bool:
        """Insert ``descriptor`` respecting the view invariants.

        Self-links are rejected.  A duplicate target keeps whichever
        copy is younger.  Returns ``True`` if the view changed.
        """
        if descriptor.node_id == self.owner_id:
            return False
        for index, entry in enumerate(self._entries):
            if entry.node_id == descriptor.node_id:
                if descriptor.age < entry.age:
                    self._entries[index] = descriptor
                    return True
                return False
        if len(self._entries) >= self.capacity:
            return False
        self._entries.append(descriptor)
        return True

    def replace_oldest_if_younger(self, descriptor: CyclonDescriptor) -> bool:
        """Replace the oldest entry when ``descriptor`` is younger.

        This is the healer-style absorption of *supplementary*
        descriptors (more than the swap length): legacy Cyclon performs
        no validation, so a peer that ships an oversized batch of fresh
        descriptors displaces the receiver's oldest links.  Honest
        exchanges never produce extras, so this path only fires under
        attack (see DESIGN.md on the Fig 3 attack model).
        """
        if descriptor.node_id == self.owner_id:
            return False
        if self.contains_id(descriptor.node_id):
            return False
        oldest = self.oldest()
        if oldest is None or descriptor.age >= oldest.age:
            return False
        self.remove(oldest)
        self._entries.append(descriptor)
        return True

    def fill_from(self, leftovers: Iterable[CyclonDescriptor]) -> int:
        """Backfill empty slots from ``leftovers`` (sent-but-unswapped).

        Implements the paper's rule that a node "is free to retain the
        descriptors it sent to the other party" when slots remain.
        Returns the number of descriptors re-inserted.
        """
        inserted = 0
        for descriptor in leftovers:
            if self.free_slots <= 0:
                break
            if self.insert(descriptor):
                inserted += 1
        return inserted
