"""Legacy Cyclon node descriptors.

A classic Cyclon descriptor is a plain container: node ID, network
address, and an age counter (paper §II-B lists ID, address and a
creation timestamp; the original Cyclon formulation tracks the age in
cycles, which is the form the "select the oldest" rule consumes, so we
store the age directly).  Nothing is signed — which is exactly why the
protocol is forgeable and the hub attack works.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.sim.network import NetworkAddress


@dataclass(frozen=True, slots=True)
class CyclonDescriptor:
    """An unauthenticated link to ``node_id``.

    ``age`` counts cycles since creation; descriptors are immutable, so
    ageing produces a new instance via :meth:`aged`.
    """

    node_id: Any
    address: NetworkAddress
    age: int = 0

    def __post_init__(self) -> None:
        if self.age < 0:
            raise ValueError("age must be non-negative")

    def aged(self, cycles: int = 1) -> "CyclonDescriptor":
        """A copy of this descriptor, older by ``cycles``."""
        return replace(self, age=self.age + cycles)

    def fresh_copy(self) -> "CyclonDescriptor":
        """A copy with age reset to zero (a re-minted descriptor)."""
        return replace(self, age=0)
