"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class CryptoError(ReproError):
    """A cryptographic operation failed (unknown key, bad signature...)."""


class SignatureError(CryptoError):
    """A signature did not verify against the claimed signer and message."""


class UnknownKeyError(CryptoError):
    """An operation referenced a public key absent from the key registry."""


class ProtocolError(ReproError):
    """A peer violated the protocol in a way the local node rejects."""


class DescriptorError(ProtocolError):
    """A node descriptor is malformed or failed validation."""


class CodecError(DescriptorError):
    """Bytes received from the wire could not be decoded.

    Subclasses :class:`DescriptorError` because to the protocol a frame
    that does not parse and a descriptor that does not validate are the
    same failure: untrusted input that must be rejected.  Raised for
    truncated input, trailing garbage, unknown type bytes, and any
    malformed record inside a frame — decoders never leak
    ``struct.error`` or bare ``ValueError`` to callers.
    """


class FrameOversizeError(CodecError):
    """A frame exceeded the decoder's maximum accepted size.

    Raised *before* any parsing of declared counts or lengths, so a
    deliberately inflated frame costs the receiver one length check
    instead of a proportional scan — the cheap rejection the
    DoS-amplification budget counts on.  Distinguished from the base
    :class:`CodecError` so per-peer health accounting can weight
    oversize frames separately from ordinary garbage.
    """


class CheckpointError(CodecError):
    """A checkpoint file could not be read back or applied.

    Raised by :mod:`repro.ops.checkpoint` for bad magic bytes, an
    unknown format version, truncated or trailing frames, a footer
    record count that disagrees with the file, and for restore targets
    that do not match the checkpoint (different seed, node population,
    or node classes).  Subclasses :class:`CodecError` because a state
    file that does not parse and a wire frame that does not parse are
    rejected the same way: typed, before any partial state is applied.
    """


class RedemptionError(ProtocolError):
    """A descriptor redemption was rejected by the creator."""


class ExchangeAborted(ProtocolError):
    """A gossip exchange terminated before completing all rounds."""


class ChannelError(ReproError):
    """A simulated network channel failed."""


class ChannelDropped(ChannelError):
    """A simulated message was dropped in transit."""


class PeerUnreachable(ChannelError):
    """The remote peer did not accept the connection (dead or departed)."""


class PeerQuarantined(PeerUnreachable):
    """A dialogue was refused because one endpoint is quarantined.

    Raised by :meth:`~repro.sim.network.Network.connect` when the
    per-peer health ledger (:mod:`repro.sim.peerhealth`) has put either
    endpoint under quarantine: persistently-faulty links are dropped
    instead of parsed.  Subclasses :class:`PeerUnreachable` because to
    the initiating protocol code the outcome is identical — the
    dialogue never opens, the cycle moves on.
    """


class SimulationError(ReproError):
    """The simulation engine detected an inconsistent state."""


class ShardFailure(SimulationError):
    """A sharded run lost a worker or hit a protocol violation.

    Raised by the shard coordinator (:mod:`repro.sim.shardcoord`) when
    a worker process dies mid-run, reports an exception, or the
    control-plane handshake is violated.  The coordinator tears the
    whole fleet down before raising, so a failed sharded capture never
    leaves half-written results or orphan processes behind.
    """


class ShardTimeout(ShardFailure):
    """A shard went silent past the coordinator's deadline.

    Subclasses :class:`ShardFailure` because callers handle both the
    same way — the run is dead; the distinction only matters for
    diagnostics (a hung worker vs a crashed one).
    """


class ShardRemoteError(ShardFailure):
    """A cross-shard request raised on the remote shard.

    Carries the remote exception's type name and message; the original
    traceback lives in the worker that raised it.
    """
