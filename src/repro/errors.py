"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object failed validation."""


class CryptoError(ReproError):
    """A cryptographic operation failed (unknown key, bad signature...)."""


class SignatureError(CryptoError):
    """A signature did not verify against the claimed signer and message."""


class UnknownKeyError(CryptoError):
    """An operation referenced a public key absent from the key registry."""


class ProtocolError(ReproError):
    """A peer violated the protocol in a way the local node rejects."""


class DescriptorError(ProtocolError):
    """A node descriptor is malformed or failed validation."""


class CodecError(DescriptorError):
    """Bytes received from the wire could not be decoded.

    Subclasses :class:`DescriptorError` because to the protocol a frame
    that does not parse and a descriptor that does not validate are the
    same failure: untrusted input that must be rejected.  Raised for
    truncated input, trailing garbage, unknown type bytes, and any
    malformed record inside a frame — decoders never leak
    ``struct.error`` or bare ``ValueError`` to callers.
    """


class RedemptionError(ProtocolError):
    """A descriptor redemption was rejected by the creator."""


class ExchangeAborted(ProtocolError):
    """A gossip exchange terminated before completing all rounds."""


class ChannelError(ReproError):
    """A simulated network channel failed."""


class ChannelDropped(ChannelError):
    """A simulated message was dropped in transit."""


class PeerUnreachable(ChannelError):
    """The remote peer did not accept the connection (dead or departed)."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistent state."""
