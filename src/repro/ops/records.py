"""Codec extension records for checkpointed engine state.

Every piece of *mutated* engine state — the parts a freshly rebuilt
overlay would not already hold — gets a record type here, registered
with the message codec (:func:`repro.core.codec.register_message_codec`)
under type codes 32–41.  Codes 1–8 belong to the SecureCyclon dialogue,
9–10 to the legacy-Cyclon shuffle; the checkpoint plane starts at 32 to
leave room for future protocol messages.

The records are plain frozen dataclasses so round-trip property tests
can construct them directly.  Two kinds of payload:

* **Structured state** (views, sample caches, blacklists, proofs,
  RNG streams, health ledgers) goes through the same writer/reader
  primitives as the wire messages — descriptors and proofs reuse
  :mod:`repro.core.wire` verbatim, so a restored descriptor verifies
  exactly like a wire-decoded one (a property the wire goldens already
  guard).

* **Heterogeneous bookkeeping** (the event trace, observer series)
  rides in :class:`BlobState` as a pickle payload, mirroring the shard
  control plane's pickled frame bodies: checkpoint files, like shard
  sockets, are operator-trusted local artefacts, not wire input (the
  trust boundary is documented in docs/OPS.md).

Node identities use the same tagged encoding as the legacy-Cyclon
codec: real runs key everything by :class:`~repro.crypto.keys.PublicKey`
digests, while unit fixtures use ints and strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.codec import (
    MessageReader,
    MessageWriter,
    register_message_codec,
)
from repro.core.descriptor import SecureDescriptor
from repro.core.proofs import ViolationProof
from repro.crypto.keys import PublicKey
from repro.cyclon.descriptor import CyclonDescriptor
from repro.errors import CodecError
from repro.sim.network import NetworkAddress

#: Extension type codes owned by the checkpoint plane.
CODE_HEADER = 32
CODE_RNG_STREAM = 33
CODE_REGISTRY = 34
CODE_NETWORK = 35
CODE_PEER_HEALTH = 36
CODE_BLOB = 37
CODE_NODE = 38
CODE_COORDINATOR = 39
CODE_FOOTER = 40

#: Node-state variants a checkpoint can carry, in tag order.
NODE_KINDS = ("secure", "cyclon", "secure-hub", "cyclon-hub", "cloning")

#: Slots :class:`BlobState` is allowed to name.
BLOB_SLOTS = ("trace", "observer-series")

#: Mersenne Twister ``getstate()`` version this codec understands.
_MT_VERSION = 3


# ----------------------------------------------------------------------
# record dataclasses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CheckpointHeader:
    """First record of every checkpoint file."""

    format_version: int
    master_seed: int
    cycle: int
    now_s: float
    period_s: float
    node_count: int


@dataclass(frozen=True)
class RngStreamState:
    """One named RNG stream's full ``random.Random.getstate()``."""

    name: str
    state: tuple


@dataclass(frozen=True)
class RegistryState:
    """The key registry's prefix-trust cache, in insertion order."""

    trusted_digests: Tuple[bytes, ...]


@dataclass(frozen=True)
class NetworkState:
    """The network directory's traffic counters."""

    dialogues_opened: int
    pushes_sent: int
    push_bytes: int
    dialogue_bytes_forward: int
    dialogue_bytes_backward: int
    dialogue_seconds: float
    undecodable_frames: int
    quarantine_refusals: int


@dataclass(frozen=True)
class PeerHealthState:
    """The per-peer health ledger, scores through amplification meter.

    ``offences`` carries (kind, count) pairs per peer so the record
    stays valid if the ledger grows new offence kinds.
    """

    cycle: int
    scores: Tuple[Tuple[Any, float], ...]
    quarantined: Tuple[Any, ...]
    offences: Tuple[Tuple[Any, Tuple[Tuple[str, int], ...]], ...]
    quarantined_at: Tuple[Tuple[Any, int], ...]
    quarantine_events: int
    release_events: int
    adversary: Tuple[Any, ...]
    adversary_bytes_sent: int
    adversary_bytes_scanned: int
    honest_bytes_to_adversary: int


@dataclass(frozen=True)
class BlobState:
    """An opaque (pickled) payload for heterogeneous bookkeeping."""

    slot: str
    payload: bytes


@dataclass(frozen=True)
class NodeState:
    """One protocol node's mutated state.

    ``kind`` selects which field groups are meaningful: the secure
    family (``secure``/``secure-hub``/``cloning``) uses the view/
    cache/blacklist groups; the legacy family (``cyclon``/
    ``cyclon-hub``) uses the ``cyclon_*`` group.  Unused groups stay
    at their defaults and are not encoded.
    """

    kind: str
    node_id: Any
    current_cycle: int
    # --- secure family ------------------------------------------------
    last_mint_cycle: Optional[int] = None
    last_mint_time_s: Optional[float] = None
    nonswap_accepted: bool = False
    nonswap_redeemed: Tuple[float, ...] = ()
    redeemed_own: Tuple[float, ...] = ()
    #: ``(descriptor, non_swappable)`` in view order.
    view_entries: Tuple[Tuple[SecureDescriptor, bool], ...] = ()
    #: ``(creator, ((timestamp, descriptor), ...))`` in cache order.
    samples: Tuple[Tuple[Any, Tuple[Tuple[float, SecureDescriptor], ...]], ...] = ()
    #: ``(expiry_cycle, creator, timestamp)`` in deque order.
    sample_expiry: Tuple[Tuple[int, Any, float], ...] = ()
    #: ``(cycle, descriptor)`` in redemption-cache order.
    redemptions: Tuple[Tuple[int, SecureDescriptor], ...] = ()
    #: Blacklist proofs in discovery order.
    proofs: Tuple[ViolationProof, ...] = ()
    # --- adversary extras ---------------------------------------------
    cycle_mint: Optional[SecureDescriptor] = None
    #: ``(descriptor, target_age)`` stash of a cloning attacker.
    stash: Tuple[Tuple[SecureDescriptor, int], ...] = ()
    #: ``(creator, timestamp, age_at_duplication, cycle)`` clone log.
    clone_events: Tuple[Tuple[Any, float, int, int], ...] = ()
    # --- legacy-Cyclon family -----------------------------------------
    cyclon_epoch: int = 0
    #: ``(descriptor, epoch_at_materialisation)`` in view order.
    cyclon_records: Tuple[Tuple[CyclonDescriptor, int], ...] = field(
        default=()
    )


@dataclass(frozen=True)
class CoordinatorState:
    """A malicious coordinator's descriptor pool and circulation map."""

    pool_maxlen: Optional[int]
    pool: Tuple[SecureDescriptor, ...]
    circulating: Tuple[SecureDescriptor, ...]


@dataclass(frozen=True)
class CheckpointFooter:
    """Last record: total record count, catching frame-level truncation."""

    record_count: int


# ----------------------------------------------------------------------
# shared field helpers
# ----------------------------------------------------------------------


def _write_node_ref(writer: MessageWriter, node_id: Any) -> None:
    """Tagged node identity (same scheme as the legacy-Cyclon codec)."""
    if isinstance(node_id, PublicKey):
        writer.u8(0)
        writer.raw(node_id.digest)
    elif isinstance(node_id, bool):
        raise CodecError(f"cannot encode node id {node_id!r}")
    elif isinstance(node_id, int):
        if not -(2**63) <= node_id < 2**63:
            raise CodecError("integer node id out of i64 range")
        writer.u8(1)
        writer.i64(node_id)
    elif isinstance(node_id, str):
        writer.u8(2)
        writer.string(node_id)
    else:
        raise CodecError(
            f"cannot encode node id of type {type(node_id).__name__}"
        )


def _read_node_ref(reader: MessageReader) -> Any:
    tag = reader.u8()
    if tag == 0:
        return PublicKey(reader.fixed(32))
    if tag == 1:
        return reader.i64()
    if tag == 2:
        return reader.string()
    raise CodecError(f"unknown node id tag {tag}")


def _write_optional_i64(writer: MessageWriter, value: Optional[int]) -> None:
    if value is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.i64(value)


def _read_optional_i64(reader: MessageReader) -> Optional[int]:
    return reader.i64() if reader.u8() else None


def _write_optional_f64(writer: MessageWriter, value: Optional[float]) -> None:
    if value is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.f64(value)


def _read_optional_f64(reader: MessageReader) -> Optional[float]:
    return reader.f64() if reader.u8() else None


def _write_f64_list(writer: MessageWriter, values: Tuple[float, ...]) -> None:
    writer.u32(len(values))
    for value in values:
        writer.f64(value)


def _read_f64_tuple(reader: MessageReader) -> Tuple[float, ...]:
    return tuple(reader.f64() for _ in range(reader.u32()))


# ----------------------------------------------------------------------
# record codecs
# ----------------------------------------------------------------------


def _encode_header(writer: MessageWriter, record: CheckpointHeader) -> None:
    writer.u16(record.format_version)
    writer.i64(record.master_seed)
    writer.u32(record.cycle)
    writer.f64(record.now_s)
    writer.f64(record.period_s)
    writer.u32(record.node_count)


def _decode_header(reader: MessageReader) -> CheckpointHeader:
    return CheckpointHeader(
        format_version=reader.u16(),
        master_seed=reader.i64(),
        cycle=reader.u32(),
        now_s=reader.f64(),
        period_s=reader.f64(),
        node_count=reader.u32(),
    )


def _encode_rng(writer: MessageWriter, record: RngStreamState) -> None:
    state = record.state
    if len(state) != 3 or state[0] != _MT_VERSION:
        raise CodecError(
            f"unsupported RNG state for stream {record.name!r} "
            f"(expected Mersenne Twister version {_MT_VERSION})"
        )
    version, internal, gauss_next = state
    writer.string(record.name)
    writer.u8(version)
    writer.u32(len(internal))
    for word in internal:
        writer.u32(word)
    _write_optional_f64(writer, gauss_next)


def _decode_rng(reader: MessageReader) -> RngStreamState:
    name = reader.string()
    version = reader.u8()
    if version != _MT_VERSION:
        raise CodecError(f"unknown RNG state version {version}")
    internal = tuple(reader.u32() for _ in range(reader.u32()))
    gauss_next = _read_optional_f64(reader)
    return RngStreamState(name=name, state=(version, internal, gauss_next))


def _encode_registry(writer: MessageWriter, record: RegistryState) -> None:
    writer.u32(len(record.trusted_digests))
    for digest in record.trusted_digests:
        writer.blob(digest)


def _decode_registry(reader: MessageReader) -> RegistryState:
    return RegistryState(
        trusted_digests=tuple(reader.blob() for _ in range(reader.u32()))
    )


def _encode_network(writer: MessageWriter, record: NetworkState) -> None:
    writer.i64(record.dialogues_opened)
    writer.i64(record.pushes_sent)
    writer.i64(record.push_bytes)
    writer.i64(record.dialogue_bytes_forward)
    writer.i64(record.dialogue_bytes_backward)
    writer.f64(record.dialogue_seconds)
    writer.i64(record.undecodable_frames)
    writer.i64(record.quarantine_refusals)


def _decode_network(reader: MessageReader) -> NetworkState:
    return NetworkState(
        dialogues_opened=reader.i64(),
        pushes_sent=reader.i64(),
        push_bytes=reader.i64(),
        dialogue_bytes_forward=reader.i64(),
        dialogue_bytes_backward=reader.i64(),
        dialogue_seconds=reader.f64(),
        undecodable_frames=reader.i64(),
        quarantine_refusals=reader.i64(),
    )


def _encode_peer_health(
    writer: MessageWriter, record: PeerHealthState
) -> None:
    writer.i64(record.cycle)
    writer.u32(len(record.scores))
    for peer, score in record.scores:
        _write_node_ref(writer, peer)
        writer.f64(score)
    writer.u32(len(record.quarantined))
    for peer in record.quarantined:
        _write_node_ref(writer, peer)
    writer.u32(len(record.offences))
    for peer, kinds in record.offences:
        _write_node_ref(writer, peer)
        writer.u8(len(kinds))
        for kind, count in kinds:
            writer.string(kind)
            writer.i64(count)
    writer.u32(len(record.quarantined_at))
    for peer, cycle in record.quarantined_at:
        _write_node_ref(writer, peer)
        writer.i64(cycle)
    writer.i64(record.quarantine_events)
    writer.i64(record.release_events)
    writer.u32(len(record.adversary))
    for peer in record.adversary:
        _write_node_ref(writer, peer)
    writer.i64(record.adversary_bytes_sent)
    writer.i64(record.adversary_bytes_scanned)
    writer.i64(record.honest_bytes_to_adversary)


def _decode_peer_health(reader: MessageReader) -> PeerHealthState:
    cycle = reader.i64()
    scores = tuple(
        (_read_node_ref(reader), reader.f64())
        for _ in range(reader.u32())
    )
    quarantined = tuple(
        _read_node_ref(reader) for _ in range(reader.u32())
    )
    offences = tuple(
        (
            _read_node_ref(reader),
            tuple(
                (reader.string(), reader.i64())
                for _ in range(reader.u8())
            ),
        )
        for _ in range(reader.u32())
    )
    quarantined_at = tuple(
        (_read_node_ref(reader), reader.i64())
        for _ in range(reader.u32())
    )
    quarantine_events = reader.i64()
    release_events = reader.i64()
    adversary = tuple(_read_node_ref(reader) for _ in range(reader.u32()))
    return PeerHealthState(
        cycle=cycle,
        scores=scores,
        quarantined=quarantined,
        offences=offences,
        quarantined_at=quarantined_at,
        quarantine_events=quarantine_events,
        release_events=release_events,
        adversary=adversary,
        adversary_bytes_sent=reader.i64(),
        adversary_bytes_scanned=reader.i64(),
        honest_bytes_to_adversary=reader.i64(),
    )


def _encode_blob(writer: MessageWriter, record: BlobState) -> None:
    if record.slot not in BLOB_SLOTS:
        raise CodecError(f"unknown blob slot {record.slot!r}")
    writer.string(record.slot)
    writer.blob(record.payload)


def _decode_blob(reader: MessageReader) -> BlobState:
    slot = reader.string()
    if slot not in BLOB_SLOTS:
        raise CodecError(f"unknown blob slot {slot!r}")
    return BlobState(slot=slot, payload=reader.blob())


def _write_cyclon_descriptor(
    writer: MessageWriter, descriptor: CyclonDescriptor
) -> None:
    _write_node_ref(writer, descriptor.node_id)
    writer.u32(descriptor.address.host)
    writer.u16(descriptor.address.port)
    writer.i64(descriptor.age)


def _read_cyclon_descriptor(reader: MessageReader) -> CyclonDescriptor:
    node_id = _read_node_ref(reader)
    address = NetworkAddress(host=reader.u32(), port=reader.u16())
    return CyclonDescriptor(node_id=node_id, address=address, age=reader.i64())


def _encode_node(writer: MessageWriter, record: NodeState) -> None:
    try:
        tag = NODE_KINDS.index(record.kind)
    except ValueError:
        raise CodecError(f"unknown node kind {record.kind!r}") from None
    writer.u8(tag)
    _write_node_ref(writer, record.node_id)
    writer.i64(record.current_cycle)
    if record.kind in ("cyclon", "cyclon-hub"):
        writer.i64(record.cyclon_epoch)
        writer.u16(len(record.cyclon_records))
        for descriptor, epoch in record.cyclon_records:
            _write_cyclon_descriptor(writer, descriptor)
            writer.i64(epoch)
        return
    _write_optional_i64(writer, record.last_mint_cycle)
    _write_optional_f64(writer, record.last_mint_time_s)
    writer.u8(1 if record.nonswap_accepted else 0)
    _write_f64_list(writer, record.nonswap_redeemed)
    _write_f64_list(writer, record.redeemed_own)
    writer.u16(len(record.view_entries))
    for descriptor, non_swappable in record.view_entries:
        writer.descriptor(descriptor)
        writer.u8(1 if non_swappable else 0)
    writer.u32(len(record.samples))
    for creator, pairs in record.samples:
        _write_node_ref(writer, creator)
        writer.u32(len(pairs))
        for timestamp, descriptor in pairs:
            writer.f64(timestamp)
            writer.descriptor(descriptor)
    writer.u32(len(record.sample_expiry))
    for expiry_cycle, creator, timestamp in record.sample_expiry:
        writer.i64(expiry_cycle)
        _write_node_ref(writer, creator)
        writer.f64(timestamp)
    writer.u16(len(record.redemptions))
    for cycle, descriptor in record.redemptions:
        writer.i64(cycle)
        writer.descriptor(descriptor)
    writer.proofs(record.proofs)
    if record.cycle_mint is None:
        writer.u8(0)
    else:
        writer.u8(1)
        writer.descriptor(record.cycle_mint)
    writer.u16(len(record.stash))
    for descriptor, target_age in record.stash:
        writer.descriptor(descriptor)
        writer.i64(target_age)
    writer.u32(len(record.clone_events))
    for creator, timestamp, age, cycle in record.clone_events:
        _write_node_ref(writer, creator)
        writer.f64(timestamp)
        writer.i64(age)
        writer.i64(cycle)


def _decode_node(reader: MessageReader) -> NodeState:
    tag = reader.u8()
    if tag >= len(NODE_KINDS):
        raise CodecError(f"unknown node kind tag {tag}")
    kind = NODE_KINDS[tag]
    node_id = _read_node_ref(reader)
    current_cycle = reader.i64()
    if kind in ("cyclon", "cyclon-hub"):
        cyclon_epoch = reader.i64()
        cyclon_records = tuple(
            (_read_cyclon_descriptor(reader), reader.i64())
            for _ in range(reader.u16())
        )
        return NodeState(
            kind=kind,
            node_id=node_id,
            current_cycle=current_cycle,
            cyclon_epoch=cyclon_epoch,
            cyclon_records=cyclon_records,
        )
    last_mint_cycle = _read_optional_i64(reader)
    last_mint_time_s = _read_optional_f64(reader)
    nonswap_accepted = bool(reader.u8())
    nonswap_redeemed = _read_f64_tuple(reader)
    redeemed_own = _read_f64_tuple(reader)
    view_entries = tuple(
        (reader.descriptor(), bool(reader.u8()))
        for _ in range(reader.u16())
    )
    samples = tuple(
        (
            _read_node_ref(reader),
            tuple(
                (reader.f64(), reader.descriptor())
                for _ in range(reader.u32())
            ),
        )
        for _ in range(reader.u32())
    )
    sample_expiry = tuple(
        (reader.i64(), _read_node_ref(reader), reader.f64())
        for _ in range(reader.u32())
    )
    redemptions = tuple(
        (reader.i64(), reader.descriptor())
        for _ in range(reader.u16())
    )
    proofs = reader.proofs()
    cycle_mint = reader.descriptor() if reader.u8() else None
    stash = tuple(
        (reader.descriptor(), reader.i64())
        for _ in range(reader.u16())
    )
    clone_events = tuple(
        (_read_node_ref(reader), reader.f64(), reader.i64(), reader.i64())
        for _ in range(reader.u32())
    )
    return NodeState(
        kind=kind,
        node_id=node_id,
        current_cycle=current_cycle,
        last_mint_cycle=last_mint_cycle,
        last_mint_time_s=last_mint_time_s,
        nonswap_accepted=nonswap_accepted,
        nonswap_redeemed=nonswap_redeemed,
        redeemed_own=redeemed_own,
        view_entries=view_entries,
        samples=samples,
        sample_expiry=sample_expiry,
        redemptions=redemptions,
        proofs=proofs,
        cycle_mint=cycle_mint,
        stash=stash,
        clone_events=clone_events,
    )


def _encode_coordinator(
    writer: MessageWriter, record: CoordinatorState
) -> None:
    _write_optional_i64(writer, record.pool_maxlen)
    writer.u16(len(record.pool))
    for descriptor in record.pool:
        writer.descriptor(descriptor)
    writer.u16(len(record.circulating))
    for descriptor in record.circulating:
        writer.descriptor(descriptor)


def _decode_coordinator(reader: MessageReader) -> CoordinatorState:
    return CoordinatorState(
        pool_maxlen=_read_optional_i64(reader),
        pool=tuple(reader.descriptor() for _ in range(reader.u16())),
        circulating=tuple(
            reader.descriptor() for _ in range(reader.u16())
        ),
    )


def _encode_footer(writer: MessageWriter, record: CheckpointFooter) -> None:
    writer.u32(record.record_count)


def _decode_footer(reader: MessageReader) -> CheckpointFooter:
    return CheckpointFooter(record_count=reader.u32())


register_message_codec(CheckpointHeader, CODE_HEADER, _encode_header, _decode_header)
register_message_codec(RngStreamState, CODE_RNG_STREAM, _encode_rng, _decode_rng)
register_message_codec(RegistryState, CODE_REGISTRY, _encode_registry, _decode_registry)
register_message_codec(NetworkState, CODE_NETWORK, _encode_network, _decode_network)
register_message_codec(
    PeerHealthState, CODE_PEER_HEALTH, _encode_peer_health, _decode_peer_health
)
register_message_codec(BlobState, CODE_BLOB, _encode_blob, _decode_blob)
register_message_codec(NodeState, CODE_NODE, _encode_node, _decode_node)
register_message_codec(
    CoordinatorState, CODE_COORDINATOR, _encode_coordinator, _decode_coordinator
)
register_message_codec(CheckpointFooter, CODE_FOOTER, _encode_footer, _decode_footer)
