"""Production ops surface: checkpoint/resume and live observation.

Two planes, deliberately decoupled from the simulation loop:

* **State plane** — :mod:`repro.ops.records` defines codec extension
  records for every piece of mutated engine state and
  :mod:`repro.ops.checkpoint` frames them into versioned checkpoint
  files; ``Engine.checkpoint()/resume()``, ``CheckpointPolicy`` and
  the sharded ``checkpoint_fleet``/``restore_fleet`` path all ride on
  it.  The contract is bit-exactness under the cycle runtime: run N
  cycles, checkpoint, resume in a fresh process, and the remaining
  cycles reproduce an unbroken run byte for byte.

* **Observe plane** — :mod:`repro.ops.metrics_stream` publishes
  per-cycle metrics through the existing Observer hooks into a bounded
  queue (drops counted, never blocking), and :mod:`repro.ops.server`
  streams them as newline-delimited JSON over a local socket; the
  ``python -m repro.ops`` CLI tails the stream and inspects checkpoint
  files, stdlib only.
"""

from repro.ops.checkpoint import (
    CheckpointPolicy,
    inspect_checkpoint,
    restore_checkpoint,
    save_checkpoint,
    split_runs,
)
from repro.ops.metrics_stream import StreamingObserver
from repro.ops.server import MetricsServer

__all__ = [
    "CheckpointPolicy",
    "MetricsServer",
    "StreamingObserver",
    "inspect_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
    "split_runs",
]
