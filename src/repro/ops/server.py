"""Local NDJSON metrics socket for :class:`StreamingObserver` rows.

:class:`MetricsServer` binds a localhost TCP socket (ephemeral port by
default), accepts any number of tailers, and pumps the observer's
bounded queue to all of them as newline-delimited JSON — one row per
line.  Both the accept loop and the pump run on daemon threads; the
simulation never waits on a client:

* a slow client gets a short send timeout and is **dropped**, not
  waited for (the queue bound already capped memory upstream);
* when the observer publishes its end-of-stream sentinel, the pump
  closes every client socket, so a tailer sees clean EOF after the
  ``finish`` row.

Use as a context manager around ``engine.run(...)``; ``close()`` is
idempotent.  ``python -m repro.ops tail HOST:PORT`` is the matching
client.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from typing import Any, List, Optional, Tuple

_POLL_S = 0.2
_SEND_TIMEOUT_S = 0.5


class MetricsServer:
    """Broadcast an observer's metric rows over a local socket."""

    def __init__(
        self,
        observer: Any,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._observer = observer
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(_POLL_S)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._clients: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.sent_lines = 0
        self.dropped_clients = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-ops-accept", daemon=True
        )
        self._pump_thread = threading.Thread(
            target=self._pump_loop, name="repro-ops-pump", daemon=True
        )
        self._accept_thread.start()
        self._pump_thread.start()

    @property
    def endpoint(self) -> str:
        """``host:port`` string for the tailer CLI."""
        return f"{self.address[0]}:{self.address[1]}"

    # -- threads -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            client.settimeout(_SEND_TIMEOUT_S)
            with self._lock:
                self._clients.append(client)

    def _pump_loop(self) -> None:
        while not self._stop.is_set():
            try:
                row = self._observer.rows.get(timeout=_POLL_S)
            except queue.Empty:
                continue
            if row is None:
                break
            self._broadcast(json.dumps(row, sort_keys=True) + "\n")
        self._close_clients()

    def _broadcast(self, line: str) -> None:
        payload = line.encode("utf-8")
        with self._lock:
            clients = list(self._clients)
        for client in clients:
            try:
                client.sendall(payload)
            except OSError:
                # Slow or gone: drop the client, never the simulation.
                self.dropped_clients += 1
                with self._lock:
                    if client in self._clients:
                        self._clients.remove(client)
                try:
                    client.close()
                except OSError:
                    pass
        self.sent_lines += 1

    def _close_clients(self) -> None:
        with self._lock:
            clients, self._clients = self._clients, []
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass

    # -- lifecycle -----------------------------------------------------

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Stop both threads and close every socket.  Idempotent."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._pump_thread.join(timeout=timeout)
        self._accept_thread.join(timeout=timeout)
        self._close_clients()

    def wait_drained(self, timeout: Optional[float] = 10.0) -> bool:
        """Block until the pump saw the end-of-stream sentinel."""
        self._pump_thread.join(timeout=timeout)
        return not self._pump_thread.is_alive()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
