"""Versioned engine checkpoints with a bit-exact resume contract.

File format (``docs/OPS.md`` has the normative description)::

    b"RPCK"                                  magic, 4 bytes
    repeat: u32 frame length + frame bytes   one codec message per frame

Every frame is an :mod:`repro.ops.records` record serialised through
:func:`repro.core.codec.encode_message`.  The first record must be a
:class:`~repro.ops.records.CheckpointHeader` (format version, master
seed, clock position, node count) and the last a
:class:`~repro.ops.records.CheckpointFooter` whose record count covers
the whole file — truncation at any frame boundary is caught by
arithmetic, truncation inside a frame by the codec, and both surface
as a typed :class:`~repro.errors.CheckpointError` before any state is
applied.

The resume model is **rebuild + overlay**: a checkpoint stores only
the *mutated* state (views, caches, blacklists, RNG streams, counters,
the clock), not keys or topology.  To resume, rebuild the identical
overlay — same builder, same config, same seed — in a fresh process,
then :func:`restore_checkpoint` overlays the saved state on top.  The
rebuild may consume build-time randomness freely: every named RNG
stream is ``setstate()``-restored afterwards.  Under the cycle runtime
the continuation is bit-for-bit the unbroken run (the golden-guarded
contract); under the event runtime the in-flight event queue is not
serialised, so resume restores *state* but restarts activation timers
— documented, not golden-guarded.
"""

from __future__ import annotations

import itertools
import pathlib
import pickle
import struct
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.adversary.cloning import CloneEvent, CloningAttacker, _StashEntry
from repro.adversary.coordinator import MaliciousCoordinator
from repro.adversary.hub import CyclonHubAttacker, SecureHubAttacker
from repro.core.codec import decode_message, encode_message
from repro.core.descriptor import DescriptorId
from repro.core.node import SecureCyclonNode
from repro.core.samples import _BY_TS, _TIMESTAMPS
from repro.core.view import _new_entry
from repro.cyclon.node import CyclonNode
from repro.errors import CheckpointError, ConfigError, SimulationError
from repro.ops.records import (
    BlobState,
    CheckpointFooter,
    CheckpointHeader,
    CoordinatorState,
    NetworkState,
    NodeState,
    PeerHealthState,
    RegistryState,
    RngStreamState,
)

MAGIC = b"RPCK"
FORMAT_VERSION = 1

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------


def _node_kind(node: Any) -> str:
    """Classify a node for :class:`NodeState` (subclasses first)."""
    if isinstance(node, CloningAttacker):
        return "cloning"
    if isinstance(node, SecureHubAttacker):
        return "secure-hub"
    if isinstance(node, SecureCyclonNode):
        return "secure"
    if isinstance(node, CyclonHubAttacker):
        return "cyclon-hub"
    if isinstance(node, CyclonNode):
        return "cyclon"
    raise CheckpointError(
        f"cannot checkpoint node of type {type(node).__name__}"
    )


def _capture_node(node: Any) -> NodeState:
    kind = _node_kind(node)
    if kind in ("cyclon", "cyclon-hub"):
        view = node.view
        return NodeState(
            kind=kind,
            node_id=node.node_id,
            current_cycle=node.current_cycle,
            cyclon_epoch=view._epoch,
            cyclon_records=tuple(
                (record[0], record[1]) for record in view._records
            ),
        )
    cache = node.sample_cache
    extras: Dict[str, Any] = {}
    if kind == "secure-hub":
        extras["cycle_mint"] = node._cycle_mint
    elif kind == "cloning":
        extras["stash"] = tuple(
            (entry.descriptor, entry.target_age) for entry in node._stash
        )
        extras["clone_events"] = tuple(
            (
                event.identity.creator,
                event.identity.timestamp,
                event.age_at_duplication,
                event.cycle,
            )
            for event in node.clone_events
        )
    return NodeState(
        kind=kind,
        node_id=node.node_id,
        current_cycle=node.current_cycle,
        last_mint_cycle=node._last_mint_cycle,
        last_mint_time_s=node._last_mint_time_s,
        nonswap_accepted=node._nonswap_accepted_this_cycle,
        nonswap_redeemed=tuple(sorted(node._nonswap_redeemed_identities)),
        redeemed_own=tuple(sorted(node._redeemed_own_timestamps)),
        view_entries=tuple(
            (entry.descriptor, entry.non_swappable)
            for entry in node.view._entries
        ),
        samples=tuple(
            (
                creator,
                tuple(
                    (ts, slot[_BY_TS][ts]) for ts in slot[_TIMESTAMPS]
                ),
            )
            for creator, slot in cache._by_creator.items()
        ),
        sample_expiry=tuple(cache._expiry),
        redemptions=tuple(node.redemption_cache._entries),
        proofs=node.blacklist.proofs_tuple(),
        **extras,
    )


def _capture_peer_health(ledger: Any) -> PeerHealthState:
    return PeerHealthState(
        cycle=ledger._cycle,
        scores=tuple(ledger._scores.items()),
        quarantined=tuple(ledger._quarantined),
        offences=tuple(
            (peer, tuple(counts.items()))
            for peer, counts in ledger.offences.items()
        ),
        quarantined_at=tuple(ledger.quarantined_at.items()),
        quarantine_events=ledger.quarantine_events,
        release_events=ledger.release_events,
        adversary=tuple(ledger._adversary),
        adversary_bytes_sent=ledger.adversary_bytes_sent,
        adversary_bytes_scanned=ledger.adversary_bytes_scanned,
        honest_bytes_to_adversary=ledger.honest_bytes_to_adversary,
    )


def _discover_coordinators(engine: Any) -> List[MaliciousCoordinator]:
    """Coordinators reachable from nodes, deduplicated, in node order."""
    found: List[MaliciousCoordinator] = []
    seen: set = set()
    for node in engine.nodes.values():
        coordinator = getattr(node, "coordinator", None)
        if isinstance(coordinator, MaliciousCoordinator):
            if id(coordinator) not in seen:
                seen.add(id(coordinator))
                found.append(coordinator)
    return found


def capture_records(engine: Any) -> List[Any]:
    """Every record of ``engine``'s mutated state, header to footer."""
    records: List[Any] = [
        CheckpointHeader(
            format_version=FORMAT_VERSION,
            master_seed=engine.rng_hub.master_seed,
            cycle=engine.clock.cycle,
            now_s=engine.clock.now_s,
            period_s=engine.clock.period_seconds,
            node_count=len(engine.nodes),
        )
    ]
    for name, state in engine.rng_hub.stream_states().items():
        records.append(RngStreamState(name=name, state=state))
    records.append(
        RegistryState(
            trusted_digests=tuple(engine.registry.trusted_chain_digests)
        )
    )
    network = engine.network
    records.append(
        NetworkState(
            dialogues_opened=network.dialogues_opened,
            pushes_sent=network.pushes_sent,
            push_bytes=network.push_bytes,
            dialogue_bytes_forward=network.dialogue_bytes_forward,
            dialogue_bytes_backward=network.dialogue_bytes_backward,
            dialogue_seconds=network.dialogue_seconds,
            undecodable_frames=network.undecodable_frames,
            quarantine_refusals=network.quarantine_refusals,
        )
    )
    ledger = network.peer_health
    if ledger is not None:
        records.append(_capture_peer_health(ledger))
    records.append(
        BlobState(
            slot="trace",
            payload=pickle.dumps(list(engine.trace), protocol=4),
        )
    )
    for coordinator in _discover_coordinators(engine):
        records.append(
            CoordinatorState(
                pool_maxlen=coordinator._pool.maxlen,
                pool=tuple(coordinator._pool),
                circulating=tuple(coordinator._circulating.values()),
            )
        )
    for node in engine.nodes.values():
        records.append(_capture_node(node))
    series = [
        observer.export_series()
        for observer in engine._observers
        if hasattr(observer, "export_series")
    ]
    records.append(
        BlobState(
            slot="observer-series", payload=pickle.dumps(series, protocol=4)
        )
    )
    records.append(CheckpointFooter(record_count=len(records) + 1))
    return records


def save_checkpoint(engine: Any, path: Any) -> pathlib.Path:
    """Serialise ``engine``'s full mutated state to ``path``.

    Pure reads plus RNG ``getstate()`` — saving perturbs nothing, so a
    run that checkpoints mid-way stays bit-identical to one that does
    not.  Returns the written path.
    """
    path = pathlib.Path(path)
    parts: List[bytes] = [MAGIC]
    for record in capture_records(engine):
        payload = encode_message(record)
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"".join(parts))
    return path


# ----------------------------------------------------------------------
# read / inspect
# ----------------------------------------------------------------------


def read_checkpoint(path: Any) -> List[Any]:
    """Parse and validate a checkpoint file into its record list.

    Raises :class:`~repro.errors.CheckpointError` for bad magic, a
    truncated frame (at either the length-prefix or codec level), a
    missing/misplaced header or footer, an unknown format version, and
    a footer count that disagrees with the file.
    """
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not data.startswith(MAGIC):
        raise CheckpointError(f"{path}: not a checkpoint file (bad magic)")
    offset = len(MAGIC)
    records: List[Any] = []
    while offset < len(data):
        if offset + _LEN.size > len(data):
            raise CheckpointError(f"{path}: truncated frame length prefix")
        (size,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        if size > len(data) - offset:
            raise CheckpointError(f"{path}: truncated frame")
        payload = data[offset : offset + size]
        offset += size
        try:
            # No frame ceiling: a checkpointed node's sample cache can
            # legitimately exceed the wire transport's 1 MiB bound, and
            # checkpoint files are operator-trusted local artefacts.
            records.append(decode_message(payload, max_frame_bytes=None))
        except CheckpointError:
            raise
        except Exception as exc:  # CodecError and codec-adjacent only
            raise CheckpointError(
                f"{path}: frame {len(records)} is malformed: {exc}"
            ) from exc
    if not records or not isinstance(records[0], CheckpointHeader):
        raise CheckpointError(f"{path}: first record is not a header")
    header = records[0]
    if header.format_version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unknown checkpoint format version "
            f"{header.format_version} (this build reads {FORMAT_VERSION})"
        )
    if not isinstance(records[-1], CheckpointFooter):
        raise CheckpointError(
            f"{path}: footer record missing (file truncated?)"
        )
    if records[-1].record_count != len(records):
        raise CheckpointError(
            f"{path}: footer declares {records[-1].record_count} records, "
            f"file holds {len(records)}"
        )
    return records


def inspect_checkpoint(path: Any) -> Dict[str, Any]:
    """A JSON-friendly summary of a checkpoint file (the CLI's view)."""
    records = read_checkpoint(path)
    header = records[0]
    kinds: Dict[str, int] = {}
    streams: List[str] = []
    record_types: Dict[str, int] = {}
    for record in records:
        name = type(record).__name__
        record_types[name] = record_types.get(name, 0) + 1
        if isinstance(record, NodeState):
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        elif isinstance(record, RngStreamState):
            streams.append(record.name)
    return {
        "path": str(path),
        "format_version": header.format_version,
        "master_seed": header.master_seed,
        "cycle": header.cycle,
        "now_s": header.now_s,
        "period_s": header.period_s,
        "node_count": header.node_count,
        "records": record_types,
        "node_kinds": kinds,
        "rng_streams": streams,
    }


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------


def _apply_node(node: Any, state: NodeState) -> None:
    if state.kind in ("cyclon", "cyclon-hub"):
        node.current_cycle = state.current_cycle
        view = node.view
        records = [
            [descriptor, epoch]
            for descriptor, epoch in state.cyclon_records
        ]
        view._records = records
        view._by_id = {record[0].node_id: record for record in records}
        view._epoch = state.cyclon_epoch
        view._oldest_record = None
        return
    node.current_cycle = state.current_cycle
    node._last_mint_cycle = state.last_mint_cycle
    node._last_mint_time_s = state.last_mint_time_s
    node._nonswap_accepted_this_cycle = state.nonswap_accepted
    node._nonswap_redeemed_identities = set(state.nonswap_redeemed)
    node._redeemed_own_timestamps = set(state.redeemed_own)
    node._sessions.clear()

    view = node.view
    view._entries = [
        _new_entry(descriptor, non_swappable)
        for descriptor, non_swappable in state.view_entries
    ]
    view._reindex()

    cache = node.sample_cache
    by_creator: Dict[Any, list] = {}
    count = 0
    for creator, pairs in state.samples:
        timestamps = [ts for ts, _ in pairs]
        by_ts = {ts: descriptor for ts, descriptor in pairs}
        by_creator[creator] = [timestamps, by_ts]
        count += len(pairs)
    cache._by_creator = by_creator
    cache._count = count
    cache._expiry = deque(
        (expiry_cycle, creator, ts)
        for expiry_cycle, creator, ts in state.sample_expiry
    )

    redemption = node.redemption_cache
    redemption._entries.clear()
    redemption._entries.extend(
        (cycle, descriptor) for cycle, descriptor in state.redemptions
    )
    redemption._contents_cache = None

    # In place: node._blacklist_map aliases blacklist.by_culprit, and
    # re-adding in discovery order rebuilds both structures exactly.
    blacklist = node.blacklist
    blacklist.by_culprit.clear()
    blacklist._proofs_tuple = ()
    for proof in state.proofs:
        blacklist.add(proof)

    if state.kind == "secure-hub":
        node._cycle_mint = state.cycle_mint
    elif state.kind == "cloning":
        node._stash = [
            _StashEntry(descriptor=descriptor, target_age=target_age)
            for descriptor, target_age in state.stash
        ]
        node.clone_events = [
            CloneEvent(
                identity=DescriptorId(creator=creator, timestamp=timestamp),
                age_at_duplication=age,
                cycle=cycle,
            )
            for creator, timestamp, age, cycle in state.clone_events
        ]


def _apply_peer_health(ledger: Any, state: PeerHealthState) -> None:
    ledger._cycle = state.cycle
    ledger._scores.clear()
    ledger._scores.update(state.scores)
    ledger._quarantined.clear()
    ledger._quarantined.update(state.quarantined)
    ledger.offences.clear()
    for peer, kinds in state.offences:
        ledger.offences[peer] = dict(kinds)
    ledger.quarantined_at.clear()
    ledger.quarantined_at.update(state.quarantined_at)
    ledger.quarantine_events = state.quarantine_events
    ledger.release_events = state.release_events
    ledger._adversary = frozenset(state.adversary)
    ledger.adversary_bytes_sent = state.adversary_bytes_sent
    ledger.adversary_bytes_scanned = state.adversary_bytes_scanned
    ledger.honest_bytes_to_adversary = state.honest_bytes_to_adversary


def restore_checkpoint(engine: Any, path: Any) -> CheckpointHeader:
    """Overlay the state saved at ``path`` onto a freshly built twin.

    Everything is validated against the engine *before* any state is
    touched — a mismatched checkpoint (different seed, period, node
    population, or node classes) raises
    :class:`~repro.errors.CheckpointError` and leaves the engine as it
    was.  Returns the checkpoint header.
    """
    records = read_checkpoint(path)
    header: CheckpointHeader = records[0]

    rng_states: Dict[str, tuple] = {}
    node_states: Dict[Any, NodeState] = {}
    coordinator_states: List[CoordinatorState] = []
    registry_state: Optional[RegistryState] = None
    network_state: Optional[NetworkState] = None
    health_state: Optional[PeerHealthState] = None
    blobs: Dict[str, bytes] = {}
    for record in records[1:-1]:
        if isinstance(record, RngStreamState):
            rng_states[record.name] = record.state
        elif isinstance(record, NodeState):
            node_states[record.node_id] = record
        elif isinstance(record, CoordinatorState):
            coordinator_states.append(record)
        elif isinstance(record, RegistryState):
            registry_state = record
        elif isinstance(record, NetworkState):
            network_state = record
        elif isinstance(record, PeerHealthState):
            health_state = record
        elif isinstance(record, BlobState):
            blobs[record.slot] = record.payload
        else:
            raise CheckpointError(
                f"unexpected record type {type(record).__name__} "
                "in checkpoint body"
            )

    # --- validate against the rebuilt engine (no mutation yet) --------
    if header.master_seed != engine.rng_hub.master_seed:
        raise CheckpointError(
            f"checkpoint was taken with master seed {header.master_seed}, "
            f"engine was built with {engine.rng_hub.master_seed}"
        )
    if header.period_s != engine.clock.period_seconds:
        raise CheckpointError(
            "checkpoint and engine disagree on the gossip period"
        )
    if engine.clock.cycle > header.cycle:
        raise CheckpointError(
            f"engine already at cycle {engine.clock.cycle}, past the "
            f"checkpoint's cycle {header.cycle}; resume into a freshly "
            "built overlay"
        )
    if header.node_count != len(node_states):
        raise CheckpointError(
            f"header declares {header.node_count} nodes, checkpoint "
            f"holds {len(node_states)}"
        )
    if set(node_states) != set(engine.nodes):
        raise CheckpointError(
            "checkpoint and engine node populations differ (a run "
            "checkpointed mid-churn must be resumed into an overlay "
            "built with the same churn prefix)"
        )
    for node_id, state in node_states.items():
        actual = _node_kind(engine.nodes[node_id])
        if actual != state.kind:
            raise CheckpointError(
                f"node {node_id!r} is a {actual!r} in the engine but a "
                f"{state.kind!r} in the checkpoint"
            )
    coordinators = _discover_coordinators(engine)
    if len(coordinators) != len(coordinator_states):
        raise CheckpointError(
            f"engine has {len(coordinators)} adversary coordinator(s), "
            f"checkpoint has {len(coordinator_states)}"
        )
    for coordinator, state in zip(coordinators, coordinator_states):
        if coordinator._pool.maxlen != state.pool_maxlen:
            raise CheckpointError(
                "coordinator pool capacity differs from the checkpoint"
            )
    if health_state is not None and engine.network.peer_health is None:
        raise CheckpointError(
            "checkpoint carries a peer-health ledger but the engine was "
            "built without one"
        )
    saved_series: List[Dict[str, Any]] = (
        pickle.loads(blobs["observer-series"])
        if "observer-series" in blobs
        else []
    )
    series_observers = [
        observer
        for observer in engine._observers
        if hasattr(observer, "restore_series")
    ]
    if len(saved_series) != len(series_observers):
        raise CheckpointError(
            f"checkpoint holds {len(saved_series)} observer series, "
            f"engine has {len(series_observers)} series observers "
            "attached (attach the same observers before resuming)"
        )

    # --- apply --------------------------------------------------------
    engine.rng_hub.restore_stream_states(rng_states)
    engine.clock.advance_to(header.now_s, cycle=header.cycle)
    if registry_state is not None:
        trusted = engine.registry.trusted_chain_digests
        trusted.clear()
        for digest in registry_state.trusted_digests:
            trusted[digest] = None
    if network_state is not None:
        network = engine.network
        network.dialogues_opened = network_state.dialogues_opened
        network.pushes_sent = network_state.pushes_sent
        network.push_bytes = network_state.push_bytes
        network.dialogue_bytes_forward = network_state.dialogue_bytes_forward
        network.dialogue_bytes_backward = network_state.dialogue_bytes_backward
        network.dialogue_seconds = network_state.dialogue_seconds
        network.undecodable_frames = network_state.undecodable_frames
        network.quarantine_refusals = network_state.quarantine_refusals
        network._push_encode_memo = None
    if health_state is not None:
        _apply_peer_health(engine.network.peer_health, health_state)
    if "trace" in blobs:
        events = pickle.loads(blobs["trace"])
        engine.trace._events[:] = events
    for coordinator, state in zip(coordinators, coordinator_states):
        coordinator._pool.clear()
        coordinator._pool.extend(state.pool)
        coordinator._circulating.clear()
        for descriptor in state.circulating:
            coordinator._circulating[descriptor.identity] = descriptor
    for node_id, state in node_states.items():
        _apply_node(engine.nodes[node_id], state)
    for observer, series in zip(series_observers, saved_series):
        observer.restore_series(series)
    return header


# ----------------------------------------------------------------------
# checkpoint policy (scheduler hook)
# ----------------------------------------------------------------------


class CheckpointPolicy:
    """When to checkpoint during a run: every N cycles, on demand, or both.

    Install on an engine (``engine.checkpoint_policy = policy``); both
    schedulers call :meth:`after_cycle` at every completed cycle
    boundary.  ``every_cycles=None`` makes the policy purely
    on-demand: nothing is written until :meth:`request` arms it.
    Written paths accumulate in :attr:`saved`.
    """

    def __init__(
        self, directory: Any, every_cycles: Optional[int] = None
    ) -> None:
        if every_cycles is not None and every_cycles < 1:
            raise ConfigError("every_cycles must be >= 1 (or None)")
        self.directory = pathlib.Path(directory)
        self.every_cycles = every_cycles
        self.saved: List[pathlib.Path] = []
        self._requested = False

    def request(self) -> None:
        """Arm a one-shot checkpoint at the next cycle boundary."""
        self._requested = True

    def after_cycle(self, engine: Any, cycle: int) -> None:
        """Scheduler hook: ``cycle`` just completed, clock is past it."""
        completed = cycle + 1
        due = self._requested or (
            self.every_cycles is not None
            and completed % self.every_cycles == 0
        )
        if not due:
            return
        self._requested = False
        self.saved.append(
            save_checkpoint(
                engine, self.directory / f"cycle-{completed:06d}.ckpt"
            )
        )


# ----------------------------------------------------------------------
# split runs (the experiments CLI's --checkpoint / --resume flags)
# ----------------------------------------------------------------------


@contextmanager
def split_runs(directory: Any, mode: str) -> Iterator[pathlib.Path]:
    """Intercept every ``Engine.run`` to checkpoint or resume half-way.

    ``mode="checkpoint"``: each ``run(cycles)`` executes the first
    ``cycles // 2`` cycles, saves ``run-<k>.ckpt`` (``k`` counts run
    calls under this context), then executes the rest — output is
    bit-identical to an unbroken run because saving is pure reads.

    ``mode="resume"``: each ``run(cycles)`` restores ``run-<k>.ckpt``
    into the freshly built engine and executes only the remaining
    ``cycles - cycles // 2`` cycles.  Combined with the identical
    experiment code having produced the checkpoints, the rendered
    output matches the unbroken run bit for bit (the golden-guarded
    25+25-vs-50 contract).

    Runs of fewer than 2 cycles pass through unsplit in both modes.
    """
    from repro.sim import engine as engine_module

    if mode not in ("checkpoint", "resume"):
        raise ConfigError(f"split_runs mode must be checkpoint/resume, got {mode!r}")
    if engine_module._RUN_HOOK is not None:
        raise SimulationError("a split-run context is already active")
    directory = pathlib.Path(directory)
    counter = itertools.count()

    if mode == "checkpoint":
        directory.mkdir(parents=True, exist_ok=True)

        def hook(engine: Any, cycles: int) -> None:
            index = next(counter)
            if cycles < 2:
                engine.scheduler.run(engine, cycles)
                return
            half = cycles // 2
            engine.scheduler.run(engine, half)
            save_checkpoint(engine, directory / f"run-{index}.ckpt")
            engine.scheduler.run(engine, cycles - half)

    else:

        def hook(engine: Any, cycles: int) -> None:
            index = next(counter)
            if cycles < 2:
                engine.scheduler.run(engine, cycles)
                return
            path = directory / f"run-{index}.ckpt"
            if not path.exists():
                raise CheckpointError(
                    f"missing {path}; run the same experiment with "
                    "--checkpoint first (run sequences must match)"
                )
            restore_checkpoint(engine, path)
            engine.scheduler.run(engine, cycles - cycles // 2)

    engine_module._RUN_HOOK = hook
    try:
        yield directory
    finally:
        engine_module._RUN_HOOK = None
