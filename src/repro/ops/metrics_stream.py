"""Streaming per-cycle metrics, decoupled from the simulation loop.

:class:`StreamingObserver` rides the existing Observer hooks — the
engine calls it like any other observer, it reads engine state with the
same pure probes the figures use, and it publishes one JSON-ready dict
per cycle into a **bounded** queue.  Nothing here can slow or perturb
the run: a full queue drops the row and counts the drop (``dropped``),
publishing never blocks, and every probe is a pure read, so attaching
the observer leaves golden outputs bit-for-bit unchanged (guarded by
``tests/ops/test_metrics_stream.py``).

:class:`~repro.ops.server.MetricsServer` drains the queue onto a local
socket as newline-delimited JSON; ``python -m repro.ops tail`` is the
matching stdlib-only client.  The row schema is documented in
``docs/OPS.md``.
"""

from __future__ import annotations

import queue
from typing import Any, Dict, List, Optional

from repro.metrics.degree import indegree_statistics
from repro.metrics.links import view_fill_fraction
from repro.sim.observers import Observer


def collect_row(engine: Any, cycle: int) -> Dict[str, Any]:
    """One cycle's metrics as a flat, JSON-serialisable dict."""
    indegree = indegree_statistics(engine)
    network = engine.network
    row: Dict[str, Any] = {
        "event": "cycle",
        "cycle": cycle,
        "now_s": engine.clock.now_s,
        "nodes": len(engine.nodes),
        "view_fill": view_fill_fraction(engine),
        "indegree_mean": indegree["mean"],
        "indegree_min": indegree["min"],
        "indegree_max": indegree["max"],
        "indegree_stddev": indegree["stddev"],
        "blacklist_proofs": sum(
            len(node.blacklist.proofs_tuple())
            for node in engine.nodes.values()
            if hasattr(node, "blacklist")
        ),
        "dialogues_opened": network.dialogues_opened,
        "pushes_sent": network.pushes_sent,
        "traffic_bytes": (
            network.push_bytes
            + network.dialogue_bytes_forward
            + network.dialogue_bytes_backward
        ),
        "undecodable_frames": network.undecodable_frames,
        "quarantine_refusals": network.quarantine_refusals,
    }
    ledger = network.peer_health
    if ledger is not None:
        row["quarantined"] = len(ledger.quarantined_peers())
        row["quarantine_events"] = ledger.quarantine_events
        row["release_events"] = ledger.release_events
        row["amplification"] = ledger.amplification()
    return row


class StreamingObserver(Observer):
    """Publishes per-cycle metric rows into a bounded queue.

    * ``maxsize`` bounds the queue; when a consumer falls behind, new
      rows are **dropped and counted** (``dropped``), never queued
      unboundedly and never blocking the simulation.
    * ``every`` samples every N-th cycle (like SeriesObserver).

    Lifecycle rows (``{"event": "start"}`` / ``{"event": "finish",
    "dropped": n}``) bracket the cycle rows so a tailer can tell a
    completed run from a severed connection.
    """

    def __init__(self, maxsize: int = 1024, every: int = 1) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        if maxsize < 1:
            raise ValueError("queue bound must be >= 1")
        self._every = every
        self.rows: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue(
            maxsize=maxsize
        )
        self.dropped = 0
        self.published = 0

    # -- queue side ----------------------------------------------------

    def publish(self, row: Optional[Dict[str, Any]]) -> None:
        """Enqueue a row (or the ``None`` end-of-stream sentinel)."""
        try:
            self.rows.put_nowait(row)
        except queue.Full:
            self.dropped += 1
        else:
            if row is not None:
                self.published += 1

    def drain(self) -> List[Dict[str, Any]]:
        """Pop everything currently queued (sentinel excluded)."""
        rows: List[Dict[str, Any]] = []
        while True:
            try:
                row = self.rows.get_nowait()
            except queue.Empty:
                return rows
            if row is not None:
                rows.append(row)

    # -- observer side (pure reads; never raises into the engine) -----

    def on_start(self, engine: Any) -> None:
        self.publish(
            {
                "event": "start",
                "cycle": engine.clock.cycle,
                "nodes": len(engine.nodes),
                "master_seed": engine.rng_hub.master_seed,
            }
        )

    def on_cycle_end(self, engine: Any, cycle: int) -> None:
        if cycle % self._every != 0:
            return
        self.publish(collect_row(engine, cycle))

    def on_finish(self, engine: Any) -> None:
        self.publish(
            {
                "event": "finish",
                "cycle": engine.clock.cycle,
                "dropped": self.dropped,
            }
        )
        # End-of-stream sentinel: tells a draining server the run is
        # over even when the finish row itself was dropped.
        self.publish(None)
