"""``python -m repro.ops`` — stdlib-only ops CLI.

Two subcommands:

* ``tail HOST:PORT`` — connect to a :class:`MetricsServer` and print
  its newline-delimited JSON rows as they arrive.  ``--limit N`` exits
  after N rows (handy for scripts); by default it follows the stream
  until the server closes it after the run's ``finish`` row.
* ``inspect PATH`` — print a JSON summary of a checkpoint file:
  format version, seed, clock position, record census, node kinds,
  RNG stream names.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import List, Optional

from repro.errors import CheckpointError
from repro.ops.checkpoint import inspect_checkpoint


def _parse_endpoint(endpoint: str) -> tuple:
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise SystemExit(f"invalid endpoint {endpoint!r}; expected HOST:PORT")
    return host, int(port)


def _tail(endpoint: str, limit: Optional[int], out) -> int:
    host, port = _parse_endpoint(endpoint)
    try:
        connection = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        print(f"cannot connect to {endpoint}: {exc}", file=sys.stderr)
        return 1
    # Follow semantics: once connected, block until the server closes
    # the stream (it does so after the run's finish row) — a quiet
    # simulation mid-cycle must not look like a dead connection.
    connection.settimeout(None)
    printed = 0
    with connection, connection.makefile("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.rstrip("\n")
            if not line:
                continue
            print(line, file=out)
            printed += 1
            if limit is not None and printed >= limit:
                break
    return 0


def _inspect(path: str, out) -> int:
    try:
        summary = inspect_checkpoint(path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.ops",
        description="Tail a live metrics stream or inspect a checkpoint.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    tail = commands.add_parser("tail", help="follow a metrics stream")
    tail.add_argument("endpoint", help="HOST:PORT of a MetricsServer")
    tail.add_argument(
        "--limit",
        type=int,
        default=None,
        help="exit after this many rows (default: follow until EOF)",
    )
    inspect = commands.add_parser("inspect", help="summarise a checkpoint")
    inspect.add_argument("path", help="checkpoint file to summarise")
    options = parser.parse_args(argv)
    if options.command == "tail":
        return _tail(options.endpoint, options.limit, out)
    return _inspect(options.path, out)


if __name__ == "__main__":
    raise SystemExit(main())
