"""Ownership-chain comparison (the ownership check of paper §IV-B).

Two copies of the same descriptor must tell compatible stories: one
chain must be a prefix of the other (one copy is simply staler).  If
the chains *fork* — diverge at some hop — then the last common owner
signed two different transfers of the same token, which is indisputable
proof of cloning.  The single sanctioned exception is a fork whose
diverging hop is a non-swappable redemption back to the creator
(paper §V-A; see DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.descriptor import (
    OwnershipHop,
    SecureDescriptor,
    TransferKind,
)
from repro.crypto.keys import PublicKey
from repro.errors import DescriptorError


class ChainRelation(enum.Enum):
    """How two chains of the same descriptor relate."""

    EQUAL = "equal"
    PREFIX = "prefix"  # first chain is a proper prefix of the second
    EXTENSION = "extension"  # second chain is a proper prefix of the first
    FORK = "fork"


@dataclass(frozen=True)
class ChainComparison:
    """Result of comparing two copies of one descriptor.

    For forks, ``fork_index`` is the position of the first diverging
    hop, ``culprit`` the owner who signed both diverging hops, and
    ``sanctioned`` whether the fork is the legal non-swappable-redemption
    shape rather than a violation.
    """

    relation: ChainRelation
    fork_index: Optional[int] = None
    culprit: Optional[PublicKey] = None
    sanctioned: bool = False

    @property
    def is_violation(self) -> bool:
        return self.relation is ChainRelation.FORK and not self.sanctioned


def _hops_equal(a: OwnershipHop, b: OwnershipHop) -> bool:
    """Hop equality for chain comparison.

    Hop objects are minted once per transfer and shared by every
    descendant chain, so in-memory copies of the same lineage compare
    by identity almost always.  Signatures are deterministic in our
    scheme, so (owner, kind) decides equality for verified chains;
    comparing signatures too would only matter for unverified garbage,
    which callers reject earlier.
    """
    return a is b or (a.owner == b.owner and a.kind == b.kind)


def _is_sanctioned_fork(
    descriptor: SecureDescriptor, a: OwnershipHop, b: OwnershipHop
) -> bool:
    """A fork is sanctioned iff a diverging hop is a non-swappable
    redemption back to the creator (the §V-A repair mechanism)."""
    for hop in (a, b):
        if (
            hop.kind is TransferKind.NONSWAP_REDEEM
            and hop.owner == descriptor.creator
        ):
            return True
    return False


def compare_chains(
    first: SecureDescriptor, second: SecureDescriptor
) -> ChainComparison:
    """Compare two copies of the same descriptor.

    Raises :class:`DescriptorError` if the descriptors do not share an
    identity — comparing unrelated descriptors is a caller bug.
    """
    if first.identity != second.identity:
        raise DescriptorError(
            f"cannot compare chains of different descriptors: "
            f"{first.identity!r} vs {second.identity!r}"
        )

    first_hops = first.hops
    second_hops = second.hops
    shorter = min(len(first_hops), len(second_hops))
    # Shared-lineage fast path: a hop object lives in exactly one
    # lineage, so identical objects at the last common index certify
    # the whole common prefix without walking it.
    if shorter and first_hops[shorter - 1] is second_hops[shorter - 1]:
        if len(first_hops) == len(second_hops):
            return ChainComparison(relation=ChainRelation.EQUAL)
        if len(first_hops) < len(second_hops):
            return ChainComparison(relation=ChainRelation.PREFIX)
        return ChainComparison(relation=ChainRelation.EXTENSION)
    for index in range(shorter):
        hop_a = first_hops[index]
        hop_b = second_hops[index]
        if _hops_equal(hop_a, hop_b):
            continue
        owners = first.owners()
        return ChainComparison(
            relation=ChainRelation.FORK,
            fork_index=index,
            culprit=owners[index],
            sanctioned=_is_sanctioned_fork(first, hop_a, hop_b),
        )

    if len(first.hops) == len(second.hops):
        return ChainComparison(relation=ChainRelation.EQUAL)
    if len(first.hops) < len(second.hops):
        return ChainComparison(relation=ChainRelation.PREFIX)
    return ChainComparison(relation=ChainRelation.EXTENSION)


def longer_chain(
    first: SecureDescriptor, second: SecureDescriptor
) -> SecureDescriptor:
    """The more-advanced of two compatible copies (paper §IV-B: "the one
    with the longest version is retained")."""
    if len(second.hops) > len(first.hops):
        return second
    return first
