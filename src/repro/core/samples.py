"""The sample cache: cross-checking every descriptor a node sees.

Paper §IV-B: "nodes should cache all descriptors they have seen in
order to match them against each other and against descriptors they
will receive in the future".  Caching a descriptor does *not* confer
ownership — samples exist solely for violation discovery.

The cache holds at most one copy per descriptor identity (the longest
compatible chain, per the paper) plus a per-creator timestamp index for
the frequency check.  Entries expire after a configurable horizon;
descriptors only live ~ℓ cycles, so a horizon of 2ℓ keeps memory
bounded without losing detection power (see DESIGN.md).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.chain import ChainRelation, compare_chains
from repro.core.descriptor import DescriptorId, SecureDescriptor
from repro.core.proofs import (
    CloningProof,
    FrequencyProof,
    ViolationProof,
    build_frequency_proof,
    timestamps_conflict,
)
from repro.crypto.keys import PublicKey


class SampleCache:
    """Per-node store of observed descriptors with conflict detection."""

    def __init__(self, horizon_cycles: int, period_seconds: float) -> None:
        if horizon_cycles < 1:
            raise ValueError("horizon_cycles must be >= 1")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self._horizon = horizon_cycles
        self._period = period_seconds
        self._by_identity: Dict[DescriptorId, SecureDescriptor] = {}
        self._timestamps: Dict[PublicKey, List[float]] = {}
        self._expiry: Deque[Tuple[int, DescriptorId]] = deque()

    def __len__(self) -> int:
        return len(self._by_identity)

    def get(self, identity: DescriptorId) -> Optional[SecureDescriptor]:
        return self._by_identity.get(identity)

    # ------------------------------------------------------------------
    # observation (the §IV-B checks)
    # ------------------------------------------------------------------

    def observe(
        self, descriptor: SecureDescriptor, cycle: int
    ) -> List[ViolationProof]:
        """Record ``descriptor`` and return any violation proofs found.

        Runs the frequency check against every cached descriptor by the
        same creator and the ownership check against the cached copy of
        the same identity, exactly as §IV-B prescribes.  The descriptor
        is cached afterwards either way: evidence stays useful even when
        a violation was already found.
        """
        identity = descriptor.identity
        existing = self._by_identity.get(identity)
        if existing is descriptor:
            # Exactly this object was observed before — every check
            # already ran against it.  Samples repeat heavily (views
            # change slowly), so this fast path carries real traffic.
            return []

        proofs: List[ViolationProof] = []
        if existing is None:
            # New identity: only the frequency check applies, then store.
            proofs.extend(self._frequency_check(descriptor))
            self._by_identity[identity] = descriptor
            timestamps = self._timestamps.setdefault(descriptor.creator, [])
            bisect.insort(timestamps, descriptor.timestamp)
            self._expiry.append((cycle + self._horizon, identity))
            return proofs

        # Known identity: the ownership check (§IV-B).  The frequency
        # check was already performed when the identity first arrived.
        comparison = compare_chains(existing, descriptor)
        if comparison.is_violation:
            proofs.append(
                CloningProof(
                    first=existing,
                    second=descriptor,
                    culprit=comparison.culprit,
                )
            )
        elif comparison.relation is ChainRelation.PREFIX:
            # Retain the longest compatible chain (§IV-B).
            self._by_identity[identity] = descriptor
        return proofs

    def _frequency_check(
        self, descriptor: SecureDescriptor
    ) -> List[FrequencyProof]:
        """Find cached same-creator descriptors minted within a period."""
        timestamps = self._timestamps.get(descriptor.creator)
        if not timestamps:
            return []
        ts = descriptor.timestamp
        period = self._period
        index = bisect.bisect_left(timestamps, ts)
        proofs: List[FrequencyProof] = []
        # Only the immediate neighbors can be closer than the period;
        # anything further is at least as far as a neighbor.  The cheap
        # timestamp test runs first — honest traffic never passes it.
        for neighbor_index in (index - 1, index):
            if not 0 <= neighbor_index < len(timestamps):
                continue
            other_ts = timestamps[neighbor_index]
            if not timestamps_conflict(other_ts, ts, period):
                continue
            other = self._by_identity.get(
                DescriptorId(creator=descriptor.creator, timestamp=other_ts)
            )
            if other is None:
                continue
            proof = build_frequency_proof(descriptor, other, period)
            if proof is not None:
                proofs.append(proof)
        return proofs

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def expire(self, cycle: int) -> int:
        """Drop entries past their horizon; returns how many were dropped."""
        dropped = 0
        while self._expiry and self._expiry[0][0] <= cycle:
            _, identity = self._expiry.popleft()
            if self._remove_identity(identity):
                dropped += 1
        return dropped

    def forget_creator(self, creator: PublicKey) -> int:
        """Purge all samples created by ``creator`` (it was blacklisted)."""
        timestamps = self._timestamps.pop(creator, [])
        removed = 0
        for timestamp in list(timestamps):
            identity = DescriptorId(creator=creator, timestamp=timestamp)
            if self._by_identity.pop(identity, None) is not None:
                removed += 1
        return removed

    def _remove_identity(self, identity: DescriptorId) -> bool:
        descriptor = self._by_identity.pop(identity, None)
        if descriptor is None:
            return False
        timestamps = self._timestamps.get(identity.creator)
        if timestamps:
            index = bisect.bisect_left(timestamps, identity.timestamp)
            if index < len(timestamps) and timestamps[index] == identity.timestamp:
                del timestamps[index]
            if not timestamps:
                del self._timestamps[identity.creator]
        return True
