"""The sample cache: cross-checking every descriptor a node sees.

Paper §IV-B: "nodes should cache all descriptors they have seen in
order to match them against each other and against descriptors they
will receive in the future".  Caching a descriptor does *not* confer
ownership — samples exist solely for violation discovery.

The cache holds at most one copy per descriptor identity (the longest
compatible chain, per the paper).  Entries expire after a configurable
horizon; descriptors only live ~ℓ cycles, so a horizon of 2ℓ keeps
memory bounded without losing detection power (see DESIGN.md).

Storage layout: one slot per creator, holding the sorted mint
timestamps (the frequency-check index) and a timestamp-keyed map of
descriptors.  A descriptor's identity is (creator, timestamp), so the
two-level layout resolves identities with plain float keys, keeps the
frequency check's neighbour lookup allocation-free, and makes purging
a blacklisted creator a single dictionary pop.  Sample observation is
the hottest loop of the whole simulation (every sample of every gossip
message lands here), which is why the layout is tuned this far and why
:meth:`observe_stream` exists.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.chain import ChainRelation, compare_chains
from repro.core.descriptor import (
    DescriptorId,
    SecureDescriptor,
    verify_descriptor,
)
from repro.core.proofs import (
    FREQUENCY_SLACK_SECONDS,
    CloningProof,
    ViolationProof,
    build_frequency_proof,
)
from repro.crypto.keys import PublicKey

# Per-creator slot layout: [sorted timestamps, {timestamp: descriptor}].
_TIMESTAMPS = 0
_BY_TS = 1


class SampleCache:
    """Per-node store of observed descriptors with conflict detection."""

    def __init__(self, horizon_cycles: int, period_seconds: float) -> None:
        if horizon_cycles < 1:
            raise ValueError("horizon_cycles must be >= 1")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self._horizon = horizon_cycles
        self._period = period_seconds
        self._by_creator: Dict[PublicKey, list] = {}
        self._count = 0
        self._expiry: Deque[Tuple[int, PublicKey, float]] = deque()

    def __len__(self) -> int:
        return self._count

    def get(self, identity: DescriptorId) -> Optional[SecureDescriptor]:
        slot = self._by_creator.get(identity.creator)
        if slot is None:
            return None
        return slot[_BY_TS].get(identity.timestamp)

    # ------------------------------------------------------------------
    # observation (the §IV-B checks)
    # ------------------------------------------------------------------

    def observe(
        self, descriptor: SecureDescriptor, cycle: int
    ) -> List[ViolationProof]:
        """Record ``descriptor`` and return any violation proofs found.

        Runs the frequency check against every cached descriptor by the
        same creator and the ownership check against the cached copy of
        the same identity, exactly as §IV-B prescribes.  The descriptor
        is cached afterwards either way: evidence stays useful even when
        a violation was already found.
        """
        creator = descriptor.creator
        ts = descriptor.timestamp
        slot = self._by_creator.get(creator)
        if slot is None:
            self._by_creator[creator] = [[ts], {ts: descriptor}]
            self._count += 1
            self._expiry.append((cycle + self._horizon, creator, ts))
            return []

        by_ts = slot[_BY_TS]
        existing = by_ts.get(ts)
        if existing is descriptor:
            # Exactly this object was observed before — every check
            # already ran against it.  Samples repeat heavily (views
            # change slowly), so this fast path carries real traffic.
            return []

        if existing is None:
            # New identity: only the frequency check applies, then store.
            timestamps = slot[_TIMESTAMPS]
            period = self._period
            threshold = period - FREQUENCY_SLACK_SECONDS
            index = bisect.bisect_left(timestamps, ts)
            size = len(timestamps)
            proofs: List[ViolationProof] = []
            # Only the immediate neighbors of the insertion point can
            # conflict — anything further is at least as far as a
            # neighbor.  The cheap timestamp test runs first; honest
            # traffic never passes it.
            for neighbor_index in (index - 1, index):
                if 0 <= neighbor_index < size:
                    other_ts = timestamps[neighbor_index]
                    if other_ts != ts and abs(other_ts - ts) < threshold:
                        other = by_ts.get(other_ts)
                        if other is not None:
                            proof = build_frequency_proof(
                                descriptor, other, period
                            )
                            if proof is not None:
                                proofs.append(proof)
            timestamps.insert(index, ts)
            by_ts[ts] = descriptor
            self._count += 1
            self._expiry.append((cycle + self._horizon, creator, ts))
            return proofs

        # Known identity: the ownership check (§IV-B).  The frequency
        # check was already performed when the identity first arrived.
        # Equal chain digests imply equal chain content (the digests
        # commit to every hop), which is by far the most common case —
        # distinct copies of the same unmoved descriptor.
        if existing.chain_digest() == descriptor.chain_digest():
            return []
        comparison = compare_chains(existing, descriptor)
        if comparison.is_violation:
            return [
                CloningProof(
                    first=existing,
                    second=descriptor,
                    culprit=comparison.culprit,
                )
            ]
        if comparison.relation is ChainRelation.PREFIX:
            # Retain the longest compatible chain (§IV-B).
            by_ts[ts] = descriptor
        return []

    def observe_stream(
        self,
        descriptors,
        cycle: int,
        registry,
        blacklisted: dict,
        deadline: float,
        drop_chains: bool,
        adopt,
        network,
    ) -> None:
        """Vet and observe a whole sample batch in one flat loop.

        Behaviourally identical to running the per-descriptor §IV-B
        pipeline (chain verification, timestamp bound, blacklist
        filters, then :meth:`observe`) over ``descriptors`` in order,
        adopting each discovered proof *immediately* via ``adopt(proof,
        network, already_validated=True)`` — adoption may blacklist a
        creator or purge this very cache, and later samples in the same
        batch must see those effects, exactly as the sequential path
        does.  Exists because sample observation runs ~10k times per
        cycle at 200 nodes and the per-call overhead of the layered
        path dominates the run time.  ``blacklisted`` is the live
        blacklist dict (mutated by adoption), ``deadline`` the
        timestamp acceptance bound.
        """
        by_creator = self._by_creator
        expiry = self._expiry
        expiry_cycle = cycle + self._horizon
        period = self._period
        threshold = period - FREQUENCY_SLACK_SECONDS
        bisect_left = bisect.bisect_left
        for descriptor in descriptors:
            if descriptor._verified_by is not registry and not verify_descriptor(
                descriptor, registry
            ):
                continue
            ts = descriptor.timestamp
            if ts > deadline:
                continue
            creator = descriptor.creator
            if creator in blacklisted:
                continue
            if drop_chains and any(
                owner in blacklisted for owner in descriptor.owners()
            ):
                continue
            slot = by_creator.get(creator)
            if slot is None:
                by_creator[creator] = [[ts], {ts: descriptor}]
                self._count += 1
                expiry.append((expiry_cycle, creator, ts))
                continue
            by_ts = slot[_BY_TS]
            existing = by_ts.get(ts)
            if existing is descriptor:
                # Seen this exact object: every check already ran.
                continue
            if existing is None:
                timestamps = slot[_TIMESTAMPS]
                index = bisect_left(timestamps, ts)
                proofs = None
                # Only the two neighbours of the insertion point can
                # conflict; both bounds checks are unrolled.
                if index and ts - timestamps[index - 1] < threshold:
                    proofs = self._neighbor_proofs(
                        descriptor, by_ts, timestamps[index - 1], proofs
                    )
                if index < len(timestamps) and (
                    timestamps[index] - ts < threshold
                ):
                    proofs = self._neighbor_proofs(
                        descriptor, by_ts, timestamps[index], proofs
                    )
                timestamps.insert(index, ts)
                by_ts[ts] = descriptor
                self._count += 1
                expiry.append((expiry_cycle, creator, ts))
                if proofs is not None:
                    # Adoption strictly after storage: blacklisting the
                    # culprit purges this cache, including the entry
                    # just stored — the sequential path stores first,
                    # and the purge must see the stored entry.
                    for proof in proofs:
                        adopt(proof, network, True)
                continue
            existing_digest = existing._chain_digest
            incoming_digest = descriptor._chain_digest
            if (
                existing_digest if existing_digest is not None
                else existing.chain_digest()
            ) == (
                incoming_digest if incoming_digest is not None
                else descriptor.chain_digest()
            ):
                continue
            comparison = compare_chains(existing, descriptor)
            if comparison.is_violation:
                adopt(
                    CloningProof(
                        first=existing,
                        second=descriptor,
                        culprit=comparison.culprit,
                    ),
                    network,
                    True,
                )
            elif comparison.relation is ChainRelation.PREFIX:
                by_ts[ts] = descriptor

    def observe_stream_planned(
        self,
        descriptors,
        cycle: int,
        registry,
        blacklisted: dict,
        deadline: float,
        drop_chains: bool,
        adopt,
        network,
        plan,
    ) -> None:
        """:meth:`observe_stream` driven by a batched verification plan.

        Semantically identical to :meth:`observe_stream` — the §IV-B
        pipeline over ``descriptors`` in order, with proofs adopted
        *immediately* so later samples in the same batch see their
        effects (blacklisted creators, purged cache entries).  The only
        difference is the verification prologue: the whole batch is
        settled up front by ``plan.verify_batch`` (one flat MAC kernel
        pass plus the cycle-scoped cross-node digest memo), so the
        per-descriptor loop tests nothing but the per-object memo the
        plan filled in.

        Hoisting verification before the loop is behaviour-preserving
        because chain verification is pure crypto: it consumes no RNG
        and its verdict cannot depend on anything a mid-batch adoption
        mutates (blacklists are filtered live on both paths).  After
        the kernel pass every valid descriptor carries the per-object
        memo, so :meth:`observe_stream`'s own prologue short-circuits
        past its ``verify_descriptor`` fallback; chains the kernel
        rejected stay unverified and the fallback re-derives exactly
        the same ``False`` — only forged traffic ever pays that
        (sequentially re-verified on both paths alike).  The
        equivalence suite drives both entry points over adversarial
        batches and asserts identical caches, blacklists, and proofs.
        """
        pending = [
            descriptor
            for descriptor in descriptors
            if descriptor._verified_by is not registry
        ]
        if pending:
            plan.verify_batch(pending)
        self.observe_stream(
            descriptors,
            cycle,
            registry,
            blacklisted,
            deadline,
            drop_chains,
            adopt,
            network,
        )

    def _neighbor_proofs(
        self, descriptor: SecureDescriptor, by_ts: dict, other_ts: float, proofs
    ):
        """Build the frequency proof against one conflicting neighbour.

        Out-of-line because timestamp conflicts never occur in honest
        traffic — the hot loop only pays for the comparison.
        """
        other = by_ts.get(other_ts)
        if other is not None:
            proof = build_frequency_proof(descriptor, other, self._period)
            if proof is not None:
                if proofs is None:
                    return [proof]
                proofs.append(proof)
        return proofs

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def expire(self, cycle: int) -> int:
        """Drop entries past their horizon; returns how many were dropped."""
        expiry = self._expiry
        if not expiry or expiry[0][0] > cycle:
            return 0
        dropped = 0
        while expiry and expiry[0][0] <= cycle:
            _, creator, ts = expiry.popleft()
            if self._remove_sample(creator, ts):
                dropped += 1
        return dropped

    def forget_creator(self, creator: PublicKey) -> int:
        """Purge all samples created by ``creator`` (it was blacklisted)."""
        slot = self._by_creator.pop(creator, None)
        if slot is None:
            return 0
        removed = len(slot[_BY_TS])
        self._count -= removed
        return removed

    def _remove_sample(self, creator: PublicKey, ts: float) -> bool:
        slot = self._by_creator.get(creator)
        if slot is None or slot[_BY_TS].pop(ts, None) is None:
            return False
        timestamps = slot[_TIMESTAMPS]
        index = bisect.bisect_left(timestamps, ts)
        if index < len(timestamps) and timestamps[index] == ts:
            del timestamps[index]
        if not timestamps:
            del self._by_creator[creator]
        self._count -= 1
        return True

    def _remove_identity(self, identity: DescriptorId) -> bool:
        return self._remove_sample(identity.creator, identity.timestamp)
