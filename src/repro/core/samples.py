"""The sample cache: cross-checking every descriptor a node sees.

Paper §IV-B: "nodes should cache all descriptors they have seen in
order to match them against each other and against descriptors they
will receive in the future".  Caching a descriptor does *not* confer
ownership — samples exist solely for violation discovery.

The cache holds at most one copy per descriptor identity (the longest
compatible chain, per the paper).  Entries expire after a configurable
horizon; descriptors only live ~ℓ cycles, so a horizon of 2ℓ keeps
memory bounded without losing detection power (see DESIGN.md).

Storage layout: one slot per creator, holding the sorted mint
timestamps (the frequency-check index) and a timestamp-keyed map of
descriptors.  A descriptor's identity is (creator, timestamp), so the
two-level layout resolves identities with plain float keys, keeps the
frequency check's neighbour lookup allocation-free, and makes purging
a blacklisted creator a single dictionary pop.  Sample observation is
the hottest loop of the whole simulation (every sample of every gossip
message lands here), which is why the layout is tuned this far and why
:meth:`observe_stream` exists.
"""

from __future__ import annotations

import bisect
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.chain import ChainRelation, compare_chains
from repro.core.descriptor import (
    DescriptorId,
    SecureDescriptor,
    verify_descriptor,
)
from repro.core.proofs import (
    FREQUENCY_SLACK_SECONDS,
    CloningProof,
    ViolationProof,
    build_frequency_proof,
)
from repro.crypto.keys import PublicKey
from repro.errors import ConfigError

# Per-creator slot layout: [sorted timestamps, {timestamp: descriptor}].
_TIMESTAMPS = 0
_BY_TS = 1

#: Environment knob for the observation prologue, mirroring
#: ``REPRO_TRANSPORT``/``REPRO_VERIFICATION``: ``loop`` (default) runs
#: the plain-Python flat screen, ``vectorized`` screens batch
#: timestamps through a numpy kernel when numpy is importable (silently
#: falling back to the loop when it is not — the knob must never make a
#: result depend on an optional dependency).
ENV_OBSERVE = "REPRO_OBSERVE"
OBSERVE_MODES = ("loop", "vectorized")

#: Below this batch size the numpy kernel costs more than it saves
#: (array construction dominates), so the vectorized mode drops back to
#: the flat loop.  Screening is pure, so the crossover is a pure
#: performance knob — results are identical on both sides of it.
_VECTOR_MIN_BATCH = 8

_np_module: Any = None


def _numpy() -> Optional[Any]:
    """Import numpy once; ``None`` when unavailable."""
    global _np_module
    if _np_module is None:
        try:
            import numpy  # noqa: PLC0415 - optional, gated dependency

            _np_module = numpy
        except ImportError:  # pragma: no cover - numpy present in CI
            _np_module = False
    return _np_module if _np_module is not False else None


def _deadline_keeps(items: list, deadline: float) -> Optional[list]:
    """The vectorized timestamp screen, or ``None`` for the flat loop.

    Returns a keep-mask (``True`` = timestamp within ``deadline``) over
    ``items`` computed by numpy when ``REPRO_OBSERVE=vectorized`` asks
    for it and the batch is big enough to amortise array construction.
    The mask is ``not (ts > deadline)`` — the exact negation of the
    sequential skip test, so non-finite timestamps (NaN compares false
    either way) keep identical fates on both paths.
    """
    raw = os.environ.get(ENV_OBSERVE, "").strip().lower()
    if not raw or raw == OBSERVE_MODES[0]:
        return None
    if raw not in OBSERVE_MODES:
        valid = ", ".join(OBSERVE_MODES)
        raise ConfigError(
            f"invalid {ENV_OBSERVE}={raw!r}; expected one of: {valid}"
        )
    if len(items) < _VECTOR_MIN_BATCH:
        return None
    np = _numpy()
    if np is None:
        return None
    timestamps = np.fromiter(
        (descriptor.timestamp for descriptor in items),
        dtype=np.float64,
        count=len(items),
    )
    return np.logical_not(timestamps > deadline).tolist()


class SampleCache:
    """Per-node store of observed descriptors with conflict detection."""

    def __init__(self, horizon_cycles: int, period_seconds: float) -> None:
        if horizon_cycles < 1:
            raise ValueError("horizon_cycles must be >= 1")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self._horizon = horizon_cycles
        self._period = period_seconds
        self._by_creator: Dict[PublicKey, list] = {}
        self._count = 0
        self._expiry: Deque[Tuple[int, PublicKey, float]] = deque()

    def __len__(self) -> int:
        return self._count

    def get(self, identity: DescriptorId) -> Optional[SecureDescriptor]:
        slot = self._by_creator.get(identity.creator)
        if slot is None:
            return None
        return slot[_BY_TS].get(identity.timestamp)

    # ------------------------------------------------------------------
    # observation (the §IV-B checks)
    # ------------------------------------------------------------------

    def observe(
        self, descriptor: SecureDescriptor, cycle: int
    ) -> List[ViolationProof]:
        """Record ``descriptor`` and return any violation proofs found.

        Runs the frequency check against every cached descriptor by the
        same creator and the ownership check against the cached copy of
        the same identity, exactly as §IV-B prescribes.  The descriptor
        is cached afterwards either way: evidence stays useful even when
        a violation was already found.
        """
        creator = descriptor.creator
        ts = descriptor.timestamp
        slot = self._by_creator.get(creator)
        if slot is None:
            self._by_creator[creator] = [[ts], {ts: descriptor}]
            self._count += 1
            self._expiry.append((cycle + self._horizon, creator, ts))
            return []

        by_ts = slot[_BY_TS]
        existing = by_ts.get(ts)
        if existing is descriptor:
            # Exactly this object was observed before — every check
            # already ran against it.  Samples repeat heavily (views
            # change slowly), so this fast path carries real traffic.
            return []

        if existing is None:
            # New identity: only the frequency check applies, then store.
            timestamps = slot[_TIMESTAMPS]
            period = self._period
            threshold = period - FREQUENCY_SLACK_SECONDS
            index = bisect.bisect_left(timestamps, ts)
            size = len(timestamps)
            proofs: List[ViolationProof] = []
            # Only the immediate neighbors of the insertion point can
            # conflict — anything further is at least as far as a
            # neighbor.  The cheap timestamp test runs first; honest
            # traffic never passes it.
            for neighbor_index in (index - 1, index):
                if 0 <= neighbor_index < size:
                    other_ts = timestamps[neighbor_index]
                    if other_ts != ts and abs(other_ts - ts) < threshold:
                        other = by_ts.get(other_ts)
                        if other is not None:
                            proof = build_frequency_proof(
                                descriptor, other, period
                            )
                            if proof is not None:
                                proofs.append(proof)
            timestamps.insert(index, ts)
            by_ts[ts] = descriptor
            self._count += 1
            self._expiry.append((cycle + self._horizon, creator, ts))
            return proofs

        # Known identity: the ownership check (§IV-B).  The frequency
        # check was already performed when the identity first arrived.
        # Equal chain digests imply equal chain content (the digests
        # commit to every hop), which is by far the most common case —
        # distinct copies of the same unmoved descriptor.
        if existing.chain_digest() == descriptor.chain_digest():
            return []
        comparison = compare_chains(existing, descriptor)
        if comparison.is_violation:
            return [
                CloningProof(
                    first=existing,
                    second=descriptor,
                    culprit=comparison.culprit,
                )
            ]
        if comparison.relation is ChainRelation.PREFIX:
            # Retain the longest compatible chain (§IV-B).
            by_ts[ts] = descriptor
        return []

    def observe_stream(
        self,
        descriptors,
        cycle: int,
        registry,
        blacklisted: dict,
        deadline: float,
        drop_chains: bool,
        adopt,
        network,
    ) -> None:
        """Vet and observe a whole sample batch in one flat loop.

        Behaviourally identical to running the per-descriptor §IV-B
        pipeline (chain verification, timestamp bound, blacklist
        filters, then :meth:`observe`) over ``descriptors`` in order,
        adopting each discovered proof *immediately* via ``adopt(proof,
        network, already_validated=True)`` — adoption may blacklist a
        creator or purge this very cache, and later samples in the same
        batch must see those effects, exactly as the sequential path
        does.  Exists because sample observation runs ~10k times per
        cycle at 200 nodes and the per-call overhead of the layered
        path dominates the run time.  ``blacklisted`` is the live
        blacklist dict (mutated by adoption), ``deadline`` the
        timestamp acceptance bound.

        Structure-of-arrays prologue: the four pure screens (chain
        verification, timestamp bound, blacklist membership, tainted-
        chain ownership) run as a flat pass over the whole batch first
        — optionally with the timestamp screen vectorized through
        numpy (``REPRO_OBSERVE=vectorized``) — and only the survivors
        enter the stateful insertion loop.  The split is behaviour-
        preserving because the screens are pure with respect to batch
        state *until the first adoption*: the blacklist only ever
        grows, and the insertion loop watches its size, re-applying the
        blacklist screens live to every survivor after a mid-batch
        adoption — exactly the checks the sequential interleaving would
        have run.  Verification order is unchanged (every descriptor,
        screened or not, is verified exactly as the sequential loop
        verifies it), so memo and trusted-cache effects are identical.
        """
        items = (
            descriptors if type(descriptors) is list else list(descriptors)
        )
        if not items:
            return
        keeps = _deadline_keeps(items, deadline)
        survivors: List[SecureDescriptor] = []
        keep = survivors.append
        position = 0
        for descriptor in items:
            if descriptor._verified_by is not registry and not verify_descriptor(
                descriptor, registry
            ):
                position += 1
                continue
            if keeps is not None:
                if not keeps[position]:
                    position += 1
                    continue
            elif descriptor.timestamp > deadline:
                position += 1
                continue
            position += 1
            if descriptor.creator in blacklisted:
                continue
            if drop_chains and any(
                owner in blacklisted for owner in descriptor.owners()
            ):
                continue
            keep(descriptor)
        if not survivors:
            return

        by_creator = self._by_creator
        expiry = self._expiry
        expiry_cycle = cycle + self._horizon
        period = self._period
        threshold = period - FREQUENCY_SLACK_SECONDS
        bisect_left = bisect.bisect_left
        # The screen above is valid while the blacklist is exactly as it
        # was; the first adoption grows it (blacklists are append-only),
        # after which every remaining survivor gets the live re-check.
        screened_size = len(blacklisted)
        for descriptor in survivors:
            creator = descriptor.creator
            if len(blacklisted) != screened_size:
                if creator in blacklisted:
                    continue
                if drop_chains and any(
                    owner in blacklisted for owner in descriptor.owners()
                ):
                    continue
            ts = descriptor.timestamp
            slot = by_creator.get(creator)
            if slot is None:
                by_creator[creator] = [[ts], {ts: descriptor}]
                self._count += 1
                expiry.append((expiry_cycle, creator, ts))
                continue
            by_ts = slot[_BY_TS]
            existing = by_ts.get(ts)
            if existing is descriptor:
                # Seen this exact object: every check already ran.
                continue
            if existing is None:
                timestamps = slot[_TIMESTAMPS]
                index = bisect_left(timestamps, ts)
                proofs = None
                # Only the two neighbours of the insertion point can
                # conflict; both bounds checks are unrolled.
                if index and ts - timestamps[index - 1] < threshold:
                    proofs = self._neighbor_proofs(
                        descriptor, by_ts, timestamps[index - 1], proofs
                    )
                if index < len(timestamps) and (
                    timestamps[index] - ts < threshold
                ):
                    proofs = self._neighbor_proofs(
                        descriptor, by_ts, timestamps[index], proofs
                    )
                timestamps.insert(index, ts)
                by_ts[ts] = descriptor
                self._count += 1
                expiry.append((expiry_cycle, creator, ts))
                if proofs is not None:
                    # Adoption strictly after storage: blacklisting the
                    # culprit purges this cache, including the entry
                    # just stored — the sequential path stores first,
                    # and the purge must see the stored entry.
                    for proof in proofs:
                        adopt(proof, network, True)
                continue
            existing_digest = existing._chain_digest
            incoming_digest = descriptor._chain_digest
            if (
                existing_digest if existing_digest is not None
                else existing.chain_digest()
            ) == (
                incoming_digest if incoming_digest is not None
                else descriptor.chain_digest()
            ):
                continue
            comparison = compare_chains(existing, descriptor)
            if comparison.is_violation:
                adopt(
                    CloningProof(
                        first=existing,
                        second=descriptor,
                        culprit=comparison.culprit,
                    ),
                    network,
                    True,
                )
            elif comparison.relation is ChainRelation.PREFIX:
                by_ts[ts] = descriptor

    def observe_stream_planned(
        self,
        descriptors,
        cycle: int,
        registry,
        blacklisted: dict,
        deadline: float,
        drop_chains: bool,
        adopt,
        network,
        plan,
    ) -> None:
        """:meth:`observe_stream` driven by a batched verification plan.

        Semantically identical to :meth:`observe_stream` — the §IV-B
        pipeline over ``descriptors`` in order, with proofs adopted
        *immediately* so later samples in the same batch see their
        effects (blacklisted creators, purged cache entries).  The only
        difference is the verification prologue: the whole batch is
        settled up front by ``plan.verify_batch`` (one flat MAC kernel
        pass plus the cycle-scoped cross-node digest memo), so the
        per-descriptor loop tests nothing but the per-object memo the
        plan filled in.

        Hoisting verification before the loop is behaviour-preserving
        because chain verification is pure crypto: it consumes no RNG
        and its verdict cannot depend on anything a mid-batch adoption
        mutates (blacklists are filtered live on both paths).  After
        the kernel pass every valid descriptor carries the per-object
        memo, so :meth:`observe_stream`'s own prologue short-circuits
        past its ``verify_descriptor`` fallback; chains the kernel
        rejected stay unverified and the fallback re-derives exactly
        the same ``False`` — only forged traffic ever pays that
        (sequentially re-verified on both paths alike).  The
        equivalence suite drives both entry points over adversarial
        batches and asserts identical caches, blacklists, and proofs.
        """
        pending = [
            descriptor
            for descriptor in descriptors
            if descriptor._verified_by is not registry
        ]
        if pending:
            plan.verify_batch(pending)
        self.observe_stream(
            descriptors,
            cycle,
            registry,
            blacklisted,
            deadline,
            drop_chains,
            adopt,
            network,
        )

    def _neighbor_proofs(
        self, descriptor: SecureDescriptor, by_ts: dict, other_ts: float, proofs
    ):
        """Build the frequency proof against one conflicting neighbour.

        Out-of-line because timestamp conflicts never occur in honest
        traffic — the hot loop only pays for the comparison.
        """
        other = by_ts.get(other_ts)
        if other is not None:
            proof = build_frequency_proof(descriptor, other, self._period)
            if proof is not None:
                if proofs is None:
                    return [proof]
                proofs.append(proof)
        return proofs

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def expire(self, cycle: int) -> int:
        """Drop entries past their horizon; returns how many were dropped."""
        expiry = self._expiry
        if not expiry or expiry[0][0] > cycle:
            return 0
        dropped = 0
        while expiry and expiry[0][0] <= cycle:
            _, creator, ts = expiry.popleft()
            if self._remove_sample(creator, ts):
                dropped += 1
        return dropped

    def forget_creator(self, creator: PublicKey) -> int:
        """Purge all samples created by ``creator`` (it was blacklisted)."""
        slot = self._by_creator.pop(creator, None)
        if slot is None:
            return 0
        removed = len(slot[_BY_TS])
        self._count -= removed
        return removed

    def _remove_sample(self, creator: PublicKey, ts: float) -> bool:
        slot = self._by_creator.get(creator)
        if slot is None or slot[_BY_TS].pop(ts, None) is None:
            return False
        timestamps = slot[_TIMESTAMPS]
        index = bisect.bisect_left(timestamps, ts)
        if index < len(timestamps) and timestamps[index] == ts:
            del timestamps[index]
        if not timestamps:
            del self._by_creator[creator]
        self._count -= 1
        return True

    def _remove_identity(self, identity: DescriptorId) -> bool:
        return self._remove_sample(identity.creator, identity.timestamp)
