"""Indisputable violation proofs (paper §IV-B, §IV-C).

A proof is a pair of signed descriptors that cannot both exist under an
honest execution.  Any third party can validate a proof locally — no
trust in the discoverer is needed — which is what makes network-wide
blacklisting sound: "it only takes one node to discover a violation,
for all nodes to reliably acknowledge the fact."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.chain import compare_chains
from repro.core.descriptor import SecureDescriptor, verify_descriptor
from repro.crypto.keys import PublicKey

FREQUENCY_SLACK_SECONDS = 1e-9
"""Tolerance subtracted from the period in the frequency predicate.

Wall clocks (and floating-point timestamp arithmetic) carry jitter far
below any meaningful gossip period; without this slack, two honestly
period-spaced timestamps could differ by one ULP less than the period
and wrongly incriminate their creator."""


def timestamps_conflict(a: float, b: float, period_seconds: float) -> bool:
    """The §IV-B frequency predicate over two mint timestamps."""
    if a == b:
        return False
    return abs(a - b) < period_seconds - FREQUENCY_SLACK_SECONDS


@dataclass(frozen=True)
class ViolationProof:
    """Base class: two conflicting descriptors incriminating ``culprit``."""

    first: SecureDescriptor
    second: SecureDescriptor
    culprit: PublicKey

    kind: str = "violation"

    def validate(self, registry, period_seconds: float) -> bool:
        """Locally re-derive the violation; True iff it holds."""
        raise NotImplementedError


@dataclass(frozen=True)
class CloningProof(ViolationProof):
    """Two copies of one descriptor with forked ownership chains.

    The culprit is the last common owner — the node that signed two
    different transfers of the same token.
    """

    kind: str = "cloning"

    def validate(self, registry, period_seconds: float) -> bool:
        if self.first.identity != self.second.identity:
            return False
        if not verify_descriptor(self.first, registry):
            return False
        if not verify_descriptor(self.second, registry):
            return False
        comparison = compare_chains(self.first, self.second)
        return comparison.is_violation and comparison.culprit == self.culprit


@dataclass(frozen=True)
class FrequencyProof(ViolationProof):
    """Two distinct descriptors minted by one creator within a period.

    Honest nodes mint at most one descriptor per gossip period, so two
    creator-signed descriptors with timestamps closer than the period
    prove over-minting by the creator (§III "frequency violations").
    Each descriptor must carry at least one hop: the first hop bears the
    creator's own signature, which is what pins the mint to the culprit.
    """

    kind: str = "frequency"

    def validate(self, registry, period_seconds: float) -> bool:
        a, b = self.first, self.second
        if a.creator != b.creator or a.creator != self.culprit:
            return False
        if not timestamps_conflict(a.timestamp, b.timestamp, period_seconds):
            return False
        if not a.hops or not b.hops:
            return False
        return verify_descriptor(a, registry) and verify_descriptor(b, registry)


def build_cloning_proof(
    first: SecureDescriptor, second: SecureDescriptor
) -> Optional[CloningProof]:
    """A :class:`CloningProof` if the two copies truly fork, else None."""
    if first.identity != second.identity:
        return None
    comparison = compare_chains(first, second)
    if not comparison.is_violation:
        return None
    return CloningProof(first=first, second=second, culprit=comparison.culprit)


def build_frequency_proof(
    first: SecureDescriptor,
    second: SecureDescriptor,
    period_seconds: float,
) -> Optional[FrequencyProof]:
    """A :class:`FrequencyProof` if the timestamps conflict, else None."""
    if first.creator != second.creator:
        return None
    if not timestamps_conflict(
        first.timestamp, second.timestamp, period_seconds
    ):
        return None
    if not first.hops or not second.hops:
        return None
    return FrequencyProof(
        first=first, second=second, culprit=first.creator
    )
