"""Codec fast path: cycle-scoped batch encoding and zero-copy decoding.

:mod:`repro.core.codec` is the *reference* codec: a field-at-a-time
reader/writer pair that every extension codec programs against and the
property suite fuzzes.  This module is the fast path the
:class:`~repro.sim.transport.WireTransport` actually runs — same bytes,
same accept/reject set, a fraction of the work:

* :class:`BatchEncoder` — encode-once-per-distinct-payload within a
  cycle.  A whole-message memo generalises the network's one-entry push
  memo (a proof flood re-frames one payload per neighbour; here *any*
  repeated payload object costs one encode per cycle), and a
  per-descriptor record memo catches the heavier redundancy below the
  message level: the same descriptor object is embedded in several
  frames per cycle (a reply here, a bulk swap there), and its record
  bytes never change.  Both memos key on ``id()`` **and keep a strong
  reference to the keyed object in the value**, so a garbage-collected
  id can never alias a new object into stale bytes.
  :meth:`BatchEncoder.encode_frames` frames a whole fan-out into one
  ``bytearray`` as length-prefixed frames.

* :class:`FastDecoder` — a zero-copy walk over each frame: one offset
  cursor, precompiled :class:`struct.Struct` instances, and no
  intermediate per-record slicing through the reference reader (the
  reference path slices every embedded record out of the frame and then
  re-slices every field out of the record).  Built-in message types 1–8
  are decoded inline; extension-registry frames fall back to the
  reference decoder, so registered protocols keep exactly their own
  decode semantics.

* :class:`InternTable` — the wire atoms that repeat in nearly every
  frame of a cycle (creator/owner public keys, whole ownership hops,
  descriptor identities, the 48-byte birth prelude) are decoded once
  per distinct byte-run and shared, analogous to the
  :class:`~repro.crypto.batch.VerificationPlan` digest memo.  Interning
  is *content-addressed* and therefore safe for value objects — keys,
  hops, identities carry no per-receiver state.  Whole descriptors are
  **never** interned: each receiver must hold its own
  :class:`~repro.core.descriptor.SecureDescriptor` instance (its lazy
  digest slots and the wire-mode no-shared-objects contract pinned by
  ``tests/sim/test_transport.py`` depend on it).

Lifetime rules: the *id-keyed encode memos* are cycle-scoped —
:meth:`BatchEncoder.begin_cycle` drops them at every cycle boundary
(ticked from ``Network.health_tick``, which both schedulers call once
per cycle) because their values pin strong references to live payload
objects.  The *content-addressed* intern maps persist across cycles
under hard size caps (clearing wholesale on overflow): a
content-addressed entry can never go stale — the key *is* the bytes
that produced the value — and retaining it lets the forward path
(receive in cycle *N*, re-send in cycle *N+1*) hit the table.  In both
cases lifetime is for *boundedness only*: every entry is
content-determined or identity-pinned, so correctness never depends on
when a clear happens.

The decoder also pre-fills each rebuilt descriptor's
``_content_key`` slot with a domain-separated BLAKE2b fingerprint of
the canonical record bytes it just parsed.  The record encoding is
injective (fixed-width fields, explicit hop count, exact-length
check), so record bytes determine chain content; the ``person`` tag
keeps this scheme's digests disjoint from the chain-walk encoding in
:func:`repro.crypto.batch._content_key`.  Batched verification's
cycle memo probe then costs one C-level hash computed as a side effect
of decoding, instead of a per-hop Python walk over the rebuilt chain.

Nothing here consumes randomness, and the encoder's output is
byte-identical to :func:`~repro.core.codec.encode_message` (property-
tested over every registered message type), so golden series stay
bit-for-bit under every ``transport × verification`` combination.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.codec import (
    MAX_FRAME_BYTES,
    _TYPE_CODES,
    _U16,
    _U32,
    decode_message,
    encode_message,
)
from repro.core.descriptor import (
    DescriptorId,
    OwnershipHop,
    SecureDescriptor,
)
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.wire import (
    _BIRTH,
    _CODE_KINDS,
    decode_proof,
    encode_descriptor,
    encode_proof,
)
from repro.crypto.keys import PublicKey
from repro.crypto.signing import Signature
from repro.errors import CodecError, DescriptorError, FrameOversizeError
from repro.sim.network import NetworkAddress

#: Domain tag for record-derived content keys (see module docstring):
#: BLAKE2b personalisation keeps these digests disjoint from the
#: chain-walk content keys of :func:`repro.crypto.batch._content_key`.
_WIRE_KEY_PERSON = b"repro-wire-v1"

#: Descriptor record layout: 32-byte creator digest + ``>IHd`` birth
#: fields + u16 hop count, then 65 bytes per hop (owner digest, kind
#: byte, MAC).  The decoder validates record length against this shape
#: *before* parsing hops, so a corrupt count is rejected by arithmetic.
_PRELUDE_BYTES = 48
_HOP_BYTES = 65

# Size caps (entries, not bytes).  Intern entries are small shared
# value objects and memo entries one record/frame each; the caps exist
# only as the no-cycle-tick fallback — a 10K-node cycle stays well
# under all of them, so in steady state eviction never fires.
_KEY_INTERN_MAX = 1 << 17
_HOP_INTERN_MAX = 1 << 17
_BIRTH_INTERN_MAX = 1 << 16
_RECORD_INTERN_MAX = 1 << 16
_DESCRIPTOR_MEMO_MAX = 1 << 16
_MESSAGE_MEMO_MAX = 1 << 14

_blake2b = hashlib.blake2b
_fill = object.__setattr__


def _build_descriptor(template: tuple) -> SecureDescriptor:
    """Assemble a fresh descriptor shell from a parsed record template.

    ``template`` is ``(creator, address, timestamp, hops, identity,
    content_key)`` — the immutable parse result of one validated record.
    Every decode gets its own :class:`SecureDescriptor` instance with
    the lazy cache slots reset: atoms are shared by content, shells and
    verification state never are.
    """
    creator, address, timestamp, hops, identity, content_key = template
    descriptor = object.__new__(SecureDescriptor)
    _fill(descriptor, "creator", creator)
    _fill(descriptor, "address", address)
    _fill(descriptor, "timestamp", timestamp)
    _fill(descriptor, "hops", hops)
    _fill(descriptor, "identity", identity)
    _fill(descriptor, "_base_digest", None)
    _fill(descriptor, "_chain_digest", None)
    _fill(descriptor, "_attested_digest", None)
    _fill(descriptor, "_verified_by", None)
    _fill(descriptor, "_content_key", content_key)
    return descriptor


class InternTable:
    """Bounded content-addressed intern maps for repeated wire atoms.

    Three content-addressed maps, each keyed by the exact byte-run (or
    byte-run-derived tuple) that produced the value:

    * ``keys``   — 32-byte digest → :class:`PublicKey`
    * ``births`` — 48-byte birth prelude → ``(creator, address,
      timestamp, identity)``; the timestamp keeps its raw bit pattern
      in the key, so ``0.0``/``-0.0``/NaN payloads never alias
    * ``hops``   — ``(signer, 65-byte hop record)`` →
      :class:`OwnershipHop`; the signer is part of the key because the
      wire format leaves it implied by chain position

    Interned hops restore, by content, exactly the sharing object
    mode gets from lineage: for *verified* chains a
    content-equal hop under the same signer implies an identical
    prefix (a deterministic MAC over the prefix digest cannot verify
    for two different prefixes), so the chain comparison's shared-hop
    fast path stays sound — and unverified garbage is rejected before
    any comparison runs, on both transports alike.

    Two record-level maps sit above the atoms (views overlap heavily,
    so most records repeat many times per cycle):

    * ``records`` — whole validated descriptor record bytes → the
      parsed *field template* ``(creator, address, timestamp, hops,
      identity, content_key)``.  A hit skips parsing entirely; only a
      fresh :class:`SecureDescriptor` shell (cache slots reset) is
      assembled per decode, so receivers still never share descriptor
      objects — or verification state.
    * ``records_by_key`` — content key → record bytes, the encode-side
      inverse.  Filled at decode time (both sides of the pair are in
      hand) and probed by :class:`BatchEncoder` when a node re-sends a
      descriptor it received, collapsing the forward path's
      re-serialisation to one dict probe.  Safe because the record
      encoding is canonical: one content, one byte string.
    """

    __slots__ = (
        "keys",
        "births",
        "hops",
        "records",
        "records_by_key",
        "hits",
        "misses",
        "_cycle",
    )

    def __init__(self) -> None:
        self.keys: Dict[bytes, PublicKey] = {}
        self.births: Dict[bytes, tuple] = {}
        self.hops: Dict[tuple, OwnershipHop] = {}
        self.records: Dict[bytes, tuple] = {}
        self.records_by_key: Dict[bytes, bytes] = {}
        self.hits = 0
        self.misses = 0
        self._cycle: Optional[int] = None

    def begin_cycle(self, cycle: int) -> None:
        """Note the cycle boundary.

        Deliberately retains every map: entries are content-addressed,
        so they cannot go stale, and descriptors received in cycle *N*
        are re-sent in cycle *N+1* — clearing here would forfeit
        exactly those hits.  Boundedness comes from the per-map size
        caps, enforced at insert time.
        """
        self._cycle = cycle

    def clear(self) -> None:
        """Drop every interned atom and record (test/tooling hook)."""
        self.keys.clear()
        self.births.clear()
        self.hops.clear()
        self.records.clear()
        self.records_by_key.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of atom lookups answered from the table."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        return {
            "keys": len(self.keys),
            "births": len(self.births),
            "hops": len(self.hops),
            "records": len(self.records),
            "hits": self.hits,
            "misses": self.misses,
        }


class BatchEncoder:
    """Cycle-scoped encoder: one encode per distinct payload or record.

    Produces frames byte-identical to
    :func:`repro.core.codec.encode_message` — built-in types are
    mirrored field for field against one reusable ``bytearray``;
    extension-registry types delegate to the reference writer, whose
    output is then memoised like any other frame.
    """

    __slots__ = (
        "_messages",
        "_descriptors",
        "_by_content",
        "_buf",
        "_cycle",
        "message_hits",
        "message_misses",
        "descriptor_hits",
        "descriptor_misses",
    )

    def __init__(self, intern: Optional[InternTable] = None) -> None:
        # id(payload) -> (payload, frame bytes).  The strong reference
        # in the value pins the id: no live entry can ever be probed by
        # a recycled id of a dead object.
        self._messages: Dict[int, Tuple[Any, bytes]] = {}
        # id(descriptor) -> (descriptor, record bytes), same contract.
        self._descriptors: Dict[int, Tuple[SecureDescriptor, bytes]] = {}
        # content key -> record bytes.  When the encoder shares an
        # InternTable with the decoder (the wire transport wires them
        # together), re-sending a descriptor received this cycle hits
        # the entry the decoder filled and skips serialisation outright.
        self._by_content: Dict[bytes, bytes] = (
            intern.records_by_key if intern is not None else {}
        )
        self._buf = bytearray()
        self._cycle: Optional[int] = None
        self.message_hits = 0
        self.message_misses = 0
        self.descriptor_hits = 0
        self.descriptor_misses = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Drop the previous cycle's memos (idempotent per cycle)."""
        if cycle == self._cycle:
            return
        self._cycle = cycle
        self._messages.clear()
        self._descriptors.clear()

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode(self, payload: Any) -> bytes:
        """Frame one payload, memoised per object within the cycle."""
        memo = self._messages
        key = id(payload)
        entry = memo.get(key)
        if entry is not None and entry[0] is payload:
            self.message_hits += 1
            return entry[1]
        self.message_misses += 1
        frame = self._encode_message(payload)
        if len(memo) >= _MESSAGE_MEMO_MAX:
            memo.clear()
        memo[key] = (payload, frame)
        return frame

    def encode_frames(self, payloads: Iterable[Any]) -> bytes:
        """Frame a whole fan-out: one buffer, length-prefixed frames.

        Byte-identical to concatenating ``u32(len(frame)) + frame`` for
        each payload's reference encoding — the framing a socket-facing
        shard would ship as one write.
        """
        out = bytearray()
        pack_len = _U32.pack
        for payload in payloads:
            frame = self.encode(payload)
            out += pack_len(len(frame))
            out += frame
        return bytes(out)

    def stats(self) -> Dict[str, int]:
        return {
            "message_hits": self.message_hits,
            "message_misses": self.message_misses,
            "descriptor_hits": self.descriptor_hits,
            "descriptor_misses": self.descriptor_misses,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _encode_message(self, payload: Any) -> bytes:
        code = _TYPE_CODES.get(type(payload))
        if code is None:
            # Extension-registry types (and the unknown-type CodecError)
            # take the reference writer verbatim.
            return encode_message(payload)
        buf = self._buf
        del buf[:]
        buf.append(code)
        if code == 1:  # GossipOpen
            self._write_descriptor(buf, payload.redemption)
            buf.append(1 if payload.non_swappable else 0)
            self._write_descriptors(buf, payload.samples)
            self._write_proofs(buf, payload.proofs)
        elif code == 2:  # GossipAccept
            self._write_descriptors(buf, payload.samples)
            self._write_proofs(buf, payload.proofs)
        elif code == 3:  # GossipReject
            raw = payload.reason.encode("utf-8")
            buf += _U16.pack(len(raw))
            buf += raw
            self._write_proofs(buf, payload.proofs)
        elif code == 4:  # TransferMessage
            self._write_descriptor(buf, payload.descriptor)
            buf += _U16.pack(payload.round_index)
        elif code == 5:  # TransferReply
            descriptor = payload.descriptor
            buf.append(1 if descriptor is not None else 0)
            if descriptor is not None:
                self._write_descriptor(buf, descriptor)
        elif code in (6, 7):  # BulkSwapMessage / BulkSwapReply
            self._write_descriptors(buf, payload.descriptors)
        else:  # ProofFlood (code 8)
            record = encode_proof(payload.proof)
            buf += _U32.pack(len(record))
            buf += record
        return bytes(buf)

    def _write_descriptor(self, buf: bytearray, descriptor: SecureDescriptor) -> None:
        record = self._descriptor_bytes(descriptor)
        buf += _U32.pack(len(record))
        buf += record

    def _write_descriptors(
        self, buf: bytearray, items: Tuple[SecureDescriptor, ...]
    ) -> None:
        buf += _U16.pack(len(items))
        for item in items:
            self._write_descriptor(buf, item)

    def _write_proofs(self, buf: bytearray, items: tuple) -> None:
        buf += _U16.pack(len(items))
        for item in items:
            record = encode_proof(item)
            buf += _U32.pack(len(record))
            buf += record

    def _descriptor_bytes(self, descriptor: SecureDescriptor) -> bytes:
        # Content-keyed probe first: a key (filled by the wire decoder
        # or the batched-verification walk) identifies chain content,
        # and the record encoding is canonical, so any descriptor with
        # this content serialises to the memoised bytes.
        content_key = descriptor._content_key
        if content_key is not None:
            by_content = self._by_content
            record = by_content.get(content_key)
            if record is not None:
                self.descriptor_hits += 1
                return record
            self.descriptor_misses += 1
            record = encode_descriptor(descriptor)
            if len(by_content) >= _RECORD_INTERN_MAX:
                by_content.clear()
            by_content[content_key] = record
            return record
        memo = self._descriptors
        key = id(descriptor)
        entry = memo.get(key)
        if entry is not None and entry[0] is descriptor:
            self.descriptor_hits += 1
            return entry[1]
        self.descriptor_misses += 1
        record = encode_descriptor(descriptor)
        if len(memo) >= _DESCRIPTOR_MEMO_MAX:
            memo.clear()
        memo[key] = (descriptor, record)
        return record


class FastDecoder:
    """Zero-copy decoder for the built-in dialogue messages.

    Walks the frame with one offset cursor; embedded descriptor records
    are parsed in place (no intermediate record slice) and their atoms
    resolved through the shared :class:`InternTable`.  The accept set
    and the raised exception types match the reference decoder exactly
    — the mutation-fuzz equivalence property in
    ``tests/properties/test_codec_roundtrip.py`` pins both directions.
    """

    __slots__ = ("intern", "frames_decoded", "descriptors_decoded")

    def __init__(self, intern: Optional[InternTable] = None) -> None:
        self.intern = intern if intern is not None else InternTable()
        self.frames_decoded = 0
        self.descriptors_decoded = 0

    def decode(
        self, data: bytes, max_frame_bytes: Optional[int] = MAX_FRAME_BYTES
    ) -> Any:
        """Inverse of :func:`~repro.core.codec.encode_message`.

        Same contract as the reference
        :func:`~repro.core.codec.decode_message`: oversize frames raise
        :class:`FrameOversizeError` before any parsing; every other
        malformed input raises :class:`CodecError`.
        """
        if type(data) is not bytes:
            # Fault injectors and tests may hand bytearray frames; the
            # intern probes below need hashable (bytes) slices.
            data = bytes(data)
        if max_frame_bytes is not None and len(data) > max_frame_bytes:
            raise FrameOversizeError(
                f"frame of {len(data)} bytes exceeds the "
                f"{max_frame_bytes}-byte ceiling"
            )
        if not data:
            raise CodecError("truncated u8 field")
        code = data[0]
        if not 1 <= code <= 8:
            # Extension-registry frames keep their own decoders; the
            # reference path also owns the unknown-code rejection.
            return decode_message(data, max_frame_bytes)
        self.frames_decoded += 1
        try:
            size = len(data)
            offset = 1
            if code == 1:  # GossipOpen
                redemption, offset = self._read_descriptor(data, offset, size)
                if offset >= size:
                    raise CodecError("truncated u8 field")
                non_swappable = bool(data[offset])
                offset += 1
                samples, offset = self._read_descriptors(data, offset, size)
                proofs, offset = self._read_proofs(data, offset, size)
                message: Any = GossipOpen(
                    redemption=redemption,
                    non_swappable=non_swappable,
                    samples=samples,
                    proofs=proofs,
                )
            elif code == 2:  # GossipAccept
                samples, offset = self._read_descriptors(data, offset, size)
                proofs, offset = self._read_proofs(data, offset, size)
                message = GossipAccept(samples=samples, proofs=proofs)
            elif code == 3:  # GossipReject
                if offset + 2 > size:
                    raise CodecError("truncated u16 field")
                (length,) = _U16.unpack_from(data, offset)
                offset += 2
                if length > size - offset:
                    raise CodecError("truncated string")
                reason = data[offset : offset + length].decode("utf-8")
                offset += length
                proofs, offset = self._read_proofs(data, offset, size)
                message = GossipReject(reason=reason, proofs=proofs)
            elif code == 4:  # TransferMessage
                descriptor, offset = self._read_descriptor(data, offset, size)
                if offset + 2 > size:
                    raise CodecError("truncated u16 field")
                (round_index,) = _U16.unpack_from(data, offset)
                offset += 2
                message = TransferMessage(
                    descriptor=descriptor, round_index=round_index
                )
            elif code == 5:  # TransferReply
                if offset >= size:
                    raise CodecError("truncated u8 field")
                present = data[offset]
                offset += 1
                descriptor = None
                if present:
                    descriptor, offset = self._read_descriptor(
                        data, offset, size
                    )
                message = TransferReply(descriptor=descriptor)
            elif code == 6:  # BulkSwapMessage
                descriptors, offset = self._read_descriptors(data, offset, size)
                message = BulkSwapMessage(descriptors=descriptors)
            elif code == 7:  # BulkSwapReply
                descriptors, offset = self._read_descriptors(data, offset, size)
                message = BulkSwapReply(descriptors=descriptors)
            else:  # ProofFlood (code 8)
                record, offset = self._read_blob(data, offset, size)
                message = ProofFlood(proof=decode_proof(record))
            if offset != size:
                raise CodecError("trailing bytes after message")
            return message
        except CodecError:
            raise
        except (ValueError, DescriptorError) as exc:
            # Mirrors the reference dispatch wrapper exactly: the typed
            # truncation errors above pass through untouched; what is
            # left is invalid UTF-8 (ValueError) and corrupt proof
            # records (DescriptorError from decode_proof).
            raise CodecError(f"malformed message bytes: {exc}") from exc

    def decode_frames(
        self, data: bytes, max_frame_bytes: Optional[int] = MAX_FRAME_BYTES
    ) -> List[Any]:
        """Decode a whole :meth:`BatchEncoder.encode_frames` buffer.

        The shard boundary's receive path: one ``recv`` hands over a
        length-prefixed buffer, :func:`split_frames` walks the
        prefixes, and each frame decodes through the shared intern
        table — so descriptors repeated across a fan-out are built
        once per worker, exactly like the in-process wire transport.
        """
        return [
            self.decode(frame, max_frame_bytes)
            for frame in split_frames(data)
        ]

    # ------------------------------------------------------------------
    # record parsing
    # ------------------------------------------------------------------

    def _read_blob(
        self, data: bytes, offset: int, size: int
    ) -> Tuple[bytes, int]:
        if offset + 4 > size:
            raise CodecError("truncated u32 field")
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        if length > size - offset:
            raise CodecError("truncated record")
        return data[offset : offset + length], offset + length

    def _read_descriptors(
        self, data: bytes, offset: int, size: int
    ) -> Tuple[Tuple[SecureDescriptor, ...], int]:
        if offset + 2 > size:
            raise CodecError("truncated u16 field")
        (count,) = _U16.unpack_from(data, offset)
        offset += 2
        items: List[SecureDescriptor] = []
        append = items.append
        read = self._read_descriptor
        for _ in range(count):
            descriptor, offset = read(data, offset, size)
            append(descriptor)
        return tuple(items), offset

    def _read_proofs(
        self, data: bytes, offset: int, size: int
    ) -> Tuple[tuple, int]:
        if offset + 2 > size:
            raise CodecError("truncated u16 field")
        (count,) = _U16.unpack_from(data, offset)
        offset += 2
        items: list = []
        for _ in range(count):
            record, offset = self._read_blob(data, offset, size)
            # Proofs carry violations — rare by construction — so they
            # keep the reference record decoder.
            items.append(decode_proof(record))
        return tuple(items), offset

    def _read_descriptor(
        self, data: bytes, offset: int, size: int
    ) -> Tuple[SecureDescriptor, int]:
        """Parse one length-prefixed descriptor record in place.

        Accepts exactly the records
        :func:`~repro.core.wire.decode_descriptor` accepts: the length
        must equal ``48 + 65·hop_count`` and every hop kind byte must
        be a registered code — validated by arithmetic before any atom
        is built.
        """
        if offset + 4 > size:
            raise CodecError("truncated u32 field")
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        if length > size - offset:
            raise CodecError("truncated record")
        start = offset
        end = offset + length
        if length < _PRELUDE_BYTES:
            raise CodecError("truncated descriptor record")
        intern = self.intern
        record = data[start:end]
        template = intern.records.get(record)
        if template is not None:
            # Whole-record hit: the exact bytes were parsed (and
            # validated) earlier this cycle — only a fresh shell with
            # reset cache slots is assembled.
            intern.hits += 1
            self.descriptors_decoded += 1
            return _build_descriptor(template), end
        prelude = record[:_PRELUDE_BYTES]
        birth = intern.births.get(prelude)
        if birth is not None:
            intern.hits += 1
            creator, address, timestamp, identity = birth
        else:
            intern.misses += 1
            creator_digest = prelude[:32]
            keys = intern.keys
            creator = keys.get(creator_digest)
            if creator is None:
                creator = PublicKey(creator_digest)
                if len(keys) >= _KEY_INTERN_MAX:
                    keys.clear()
                keys[creator_digest] = creator
            host, port, timestamp = _BIRTH.unpack_from(prelude, 32)
            address = NetworkAddress(host=host, port=port)
            identity = DescriptorId(creator=creator, timestamp=timestamp)
            births = intern.births
            if len(births) >= _BIRTH_INTERN_MAX:
                births.clear()
            births[prelude] = (creator, address, timestamp, identity)
        (hop_count,) = _U16.unpack_from(data, start + 46)
        if length != _PRELUDE_BYTES + _HOP_BYTES * hop_count:
            raise CodecError("malformed descriptor record length")
        hops: List[OwnershipHop] = []
        append = hops.append
        hop_intern = intern.hops
        signer = creator
        cursor = start + _PRELUDE_BYTES
        for _ in range(hop_count):
            hop_rec = data[cursor : cursor + _HOP_BYTES]
            hop_key = (signer, hop_rec)
            hop = hop_intern.get(hop_key)
            if hop is None:
                intern.misses += 1
                kind = _CODE_KINDS.get(hop_rec[32])
                if kind is None:
                    raise CodecError("unknown hop kind code")
                owner_digest = hop_rec[:32]
                keys = intern.keys
                owner = keys.get(owner_digest)
                if owner is None:
                    owner = PublicKey(owner_digest)
                    if len(keys) >= _KEY_INTERN_MAX:
                        keys.clear()
                    keys[owner_digest] = owner
                signature = object.__new__(Signature)
                _fill(signature, "signer", signer)
                _fill(signature, "mac", hop_rec[33:])
                hop = object.__new__(OwnershipHop)
                _fill(hop, "owner", owner)
                _fill(hop, "kind", kind)
                _fill(hop, "signature", signature)
                if len(hop_intern) >= _HOP_INTERN_MAX:
                    hop_intern.clear()
                hop_intern[hop_key] = hop
            else:
                intern.hits += 1
            append(hop)
            signer = hop.owner
            cursor += _HOP_BYTES
        # The record bytes determine the chain content injectively, so
        # their domain-separated fingerprint is a valid batched-
        # verification memo key — computed here, where the bytes are
        # already in hand, instead of re-walking the chain later.
        content_key = _blake2b(
            record, digest_size=32, person=_WIRE_KEY_PERSON
        ).digest()
        template = (
            creator,
            address,
            timestamp,
            tuple(hops),
            identity,
            content_key,
        )
        records = intern.records
        if len(records) >= _RECORD_INTERN_MAX:
            records.clear()
        records[record] = template
        by_key = intern.records_by_key
        if len(by_key) >= _RECORD_INTERN_MAX:
            by_key.clear()
        by_key[content_key] = record
        self.descriptors_decoded += 1
        return _build_descriptor(template), end


def split_frames(data: bytes) -> List[bytes]:
    """Split a :meth:`BatchEncoder.encode_frames` buffer into frames.

    Raises :class:`CodecError` on truncated length prefixes or frame
    bodies — the batch-framing mirror of the per-frame decoders.
    """
    frames: List[bytes] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + 4 > size:
            raise CodecError("truncated frame length prefix")
        (length,) = _U32.unpack_from(data, offset)
        offset += 4
        if length > size - offset:
            raise CodecError("truncated frame body")
        frames.append(data[offset : offset + length])
        offset += length
    return frames
