"""The SecureCyclon protocol node (paper §IV–§V).

This class composes every security mechanism of the paper around the
Cyclon gossip skeleton:

* descriptors are owned tokens; gossiping requires redeeming one
  created by the partner (§IV-A);
* every received descriptor — owned or sample — passes through the
  frequency and ownership checks (§IV-B);
* discovered violations become proofs, flooded to the overlay and
  piggybacked on gossip (§IV-C);
* empty view slots are repaired with non-swappable copies (§V-A);
* ownership moves one descriptor per round trip when tit-for-tat is on
  (§V-B);
* redeemed descriptors linger in the redemption cache and travel as
  samples (§V-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.blacklist import Blacklist
from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import (
    TERMINAL_KINDS,
    SecureDescriptor,
    TransferKind,
    mint,
    verify_descriptor,
)
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import ViolationProof, timestamps_conflict
from repro.core.redemption import RedemptionCache
from repro.core.samples import SampleCache
from repro.core.view import SecureView, ViewEntry
from repro.crypto.batch import VerificationPlan
from repro.crypto.keys import KeyPair, PublicKey
from repro.errors import PeerUnreachable
from repro.sim.channel import MessageDropped, MessageTimeout
from repro.sim.clock import SimClock
from repro.sim.engine import ProtocolNode
from repro.sim.network import Network, NetworkAddress
from repro.sim.retry import drive_attempts


@dataclass
class _PartnerSession:
    """Per-dialogue state kept by the partner between tit-for-tat rounds."""

    initiator: PublicKey
    rounds_left: int
    swap_budget: int  # how many descriptors we may still send


class SecureCyclonNode(ProtocolNode):
    """A correct SecureCyclon participant."""

    def __init__(
        self,
        keypair: KeyPair,
        address: NetworkAddress,
        config: SecureCyclonConfig,
        clock: SimClock,
        registry,
        rng,
        trace=None,
    ) -> None:
        self.keypair = keypair
        self.node_id = keypair.public
        self.address = address
        self.config = config
        self.clock = clock
        self.registry = registry
        self.rng = rng
        self.trace = trace

        self.view = SecureView(self.node_id, config.view_length)
        # Drift-tolerant frequency window: every frequency predicate
        # this node evaluates (self-guard, sample cross-check, relayed
        # proof validation) uses the same effective period, so what the
        # node refuses to do is exactly what it would prosecute.
        self._freq_period = config.effective_frequency_period(
            clock.period_seconds
        )
        self.sample_cache = SampleCache(
            horizon_cycles=config.effective_sample_horizon,
            period_seconds=self._freq_period,
        )
        self.redemption_cache = RedemptionCache(config.redemption_cache_cycles)
        self.blacklist = Blacklist()

        self.current_cycle = 0
        self._tolerance_cached = config.effective_timestamp_tolerance(
            clock.period_seconds
        )
        # Hot-path aliases: descriptor vetting runs for every sample in
        # every message, so per-descriptor method calls and config
        # attribute chains are hoisted once here.  The blacklist dict is
        # never replaced, only mutated, so the alias stays valid.
        self._blacklist_map = self.blacklist.by_culprit
        self._drop_chains = config.drop_chains_through_blacklisted
        # Batched verification (config knob / REPRO_VERIFICATION): a
        # standalone node owns a private plan; engine-built overlays
        # rebind the engine-wide shared plan (bind_verification_plan)
        # so each distinct chain is verified once network-wide per
        # cycle.  ``None`` selects the sequential path everywhere.
        self._vplan: Optional[VerificationPlan] = (
            VerificationPlan(registry)
            if config.effective_verification() == "batched"
            else None
        )
        self._last_mint_cycle: Optional[int] = None
        self._last_mint_time_s: Optional[float] = None
        self._sessions: Dict[PublicKey, _PartnerSession] = {}
        # §V-A restrictions on non-swappable redemptions we accept.
        self._nonswap_redeemed_identities: Set[float] = set()
        self._nonswap_accepted_this_cycle = False
        # Timestamps of own descriptors we have already seen redeemed.
        self._redeemed_own_timestamps: Set[float] = set()

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle state: sessions, non-swappable quota, cache expiry."""
        self.current_cycle = cycle
        self._nonswap_accepted_this_cycle = False
        self._sessions.clear()
        self.sample_cache.expire(cycle)
        self.redemption_cache.expire(cycle)
        if self._vplan is not None:
            # Idempotent per cycle number: on a shared plan the first
            # node (or the scheduler) to reach the boundary clears the
            # digest memo, the rest are no-ops.
            self._vplan.begin_cycle(cycle)

    def run_cycle(self, network: Network) -> None:
        """Initiate one gossip exchange by redeeming the oldest view entry.

        When the dialogue *opening* times out (event runtime only), the
        configured :class:`~repro.sim.retry.RetryPolicy` may re-initiate
        with the next oldest entry — immediately, or after a scheduled
        backoff.  Only un-opened dialogues retry: once the opening
        succeeded, this activation's single fresh mint may already
        exist, and a second exchange could not mint legally.
        """
        self._network_for_flood = network
        if not self._may_mint_now():
            # Event runtime: a jittered timer fired early enough that a
            # fresh mint would violate the §IV-B frequency rule.  Sit
            # this activation out *before* redeeming anything, so no
            # token is wasted.  Never triggers under the cycle runtime
            # (activations there are exactly one period apart).
            self._emit("secure.mint_rate_limited")
            return
        drive_attempts(
            policy=self.config.retry,
            attempt=lambda: self._gossip_once(network),
            network=network,
            node_id=self.node_id,
            emit=self._emit,
            prefix="secure",
            # Deferred backoff attempts re-check the §IV-B mint guard
            # at fire time: the node's next regular activation may
            # have minted in the meantime.
            pre_fire=self._may_mint_now,
        )

    def _gossip_once(self, network: Network) -> bool:
        """One full exchange attempt; True iff the opening timed out
        (the only failure a :class:`~repro.sim.retry.RetryPolicy` may
        retry)."""
        entry = self.view.oldest()
        if entry is None:
            self._emit("secure.idle")
            return False
        self.view.remove_entry(entry)
        partner_id = entry.creator
        if self.blacklist.is_blacklisted(partner_id):
            # Should not normally happen (views are purged on blacklist),
            # but races with purging are handled defensively.
            self._emit("secure.skip_blacklisted", partner=partner_id)
            return False
        try:
            channel = network.connect(self.node_id, partner_id)
        except PeerUnreachable:
            # §V-A case 1: drop the descriptor, skip the cycle.
            self._emit("secure.partner_unreachable", partner=partner_id)
            return False

        redemption = entry.descriptor.redeem(
            self.keypair, non_swappable=entry.non_swappable
        )
        if not entry.non_swappable:
            # §V-C: the redeemer retains the redeemed copy as a sample.
            # Non-swappable redemptions are sanctioned forks and must not
            # circulate (DESIGN.md).
            self.redemption_cache.add(redemption, self.current_cycle)
            self.sample_cache.observe(redemption, self.current_cycle)

        opening = GossipOpen(
            redemption=redemption,
            non_swappable=entry.non_swappable,
            samples=self._samples_payload(),
            proofs=self.blacklist.proofs_tuple(),
        )
        try:
            reply = channel.request(opening)
        except MessageDropped as failure:
            # Lost, or (event runtime) timed out — §V-A by timing: when
            # ``delivered`` is True the partner *did* process the
            # redemption and the token is spent on both sides even
            # though the initiator saw nothing back; otherwise the
            # token is still spent locally (the signed redemption hop
            # exists).  Either way this attempt is over; a timeout may
            # be retried with a *different* token, never this one.
            if isinstance(failure, MessageTimeout):
                self._emit(
                    "secure.open_timeout",
                    partner=partner_id,
                    delivered=failure.delivered,
                )
                return True
            self._emit("secure.open_dropped", partner=partner_id)
            return False

        if isinstance(reply, GossipReject):
            self._ingest_proofs(reply.proofs, network)
            self._emit(
                "secure.open_rejected", partner=partner_id, reason=reply.reason
            )
            return False
        if not isinstance(reply, GossipAccept):
            self._emit("secure.bad_reply", partner=partner_id)
            return False

        self._ingest_proofs(reply.proofs, network)
        self._observe_all(reply.samples, network)
        if self.blacklist.is_blacklisted(partner_id):
            return False

        if self.config.tit_for_tat:
            self._initiate_tit_for_tat(channel, partner_id, network)
        else:
            self._initiate_bulk_swap(channel, partner_id, network)
        return False

    def receive(self, sender_id: Any, payload: Any) -> Any:
        """Dispatch an incoming request/response message to its handler.

        Transfer rounds outnumber dialogue openings roughly
        ``swap_length`` to one, so they are dispatched first.
        """
        if isinstance(payload, TransferMessage):
            return self._handle_transfer(sender_id, payload)
        if isinstance(payload, GossipOpen):
            return self._handle_open(sender_id, payload)
        if isinstance(payload, BulkSwapMessage):
            return self._handle_bulk_swap(sender_id, payload)
        # A message that decodes but makes no sense as a request — e.g.
        # a reply-type frame replayed by a wire-plane attacker — is
        # refused, not crashed on: a Byzantine sender must never cost
        # the *receiver* its cycle.  Initiators already treat any
        # non-matching reply as a failed exchange, so the refusal is
        # safe at every round of the dialogue.
        self._emit("secure.unexpected_request", sender=sender_id)
        return GossipReject(reason="unexpected message", proofs=())

    def receive_push(self, sender_id: Any, payload: Any) -> None:
        """Handle a one-way push (proof flooding); unknown pushes are dropped."""
        if isinstance(payload, ProofFlood):
            self._ingest_proofs((payload.proof,), self._network_for_flood)
        # Unknown pushes are ignored: one-way traffic cannot be trusted.

    # ------------------------------------------------------------------
    # initiator side
    # ------------------------------------------------------------------

    def _may_mint_now(self) -> bool:
        """Whether a fresh mint at the current instant is §IV-B-legal.

        Guards both hazards of desynchronised timers: a second mint in
        the same cycle (the classic guard) and two mints whose
        timestamps are closer than one period (what honest peers would
        prosecute as a frequency violation).
        """
        if self._last_mint_cycle == self.current_cycle:
            return False
        last = self._last_mint_time_s
        if last is None:
            return True
        return not timestamps_conflict(
            self.clock.now_s, last, self._freq_period
        )

    def mint_fresh_descriptor(self) -> SecureDescriptor:
        """Mint this cycle's fresh self-descriptor (at most one per cycle)."""
        if self._last_mint_cycle == self.current_cycle:
            raise RuntimeError(
                "honest nodes mint at most one descriptor per cycle"
            )
        self._last_mint_cycle = self.current_cycle
        self._last_mint_time_s = self.clock.now()
        return mint(self.keypair, self.address, self.clock.now())

    def _pop_outgoing(
        self, counterparty: PublicKey
    ) -> Optional[SecureDescriptor]:
        """Select the next view descriptor to send to ``counterparty``.

        One hook for all three send paths (tit-for-tat rounds, partner
        counters, bulk swaps); adversarial subclasses override it to
        substitute cloned descriptors.  Descriptors created by the
        counterparty are skipped — handing a node its own token would
        merely retire it.
        """
        entry = self.view.pop_one_random_swappable(
            self.rng, exclude_creator=counterparty
        )
        return entry.descriptor if entry is not None else None

    def _initiate_tit_for_tat(
        self, channel, partner_id: PublicKey, network: Network
    ) -> None:
        """Run the §V-B rounds: one descriptor each way per round trip."""
        transferred: List[SecureDescriptor] = []
        for round_index in range(self.config.swap_length):
            if round_index == 0:
                outgoing_plain = self.mint_fresh_descriptor()
            else:
                outgoing_plain = self._pop_outgoing(partner_id)
                if outgoing_plain is None:
                    break
                transferred.append(outgoing_plain)
            outgoing = outgoing_plain.transfer(self.keypair, partner_id)
            try:
                reply = channel.request(
                    TransferMessage(descriptor=outgoing, round_index=round_index)
                )
            except MessageDropped as failure:
                # A lost or delivered-but-unanswered round: the partner
                # may hold our descriptor while we hold nothing new;
                # tit-for-tat accounting is identical on both paths
                # (the transferred list already tracks what must be
                # repaired non-swappably).
                if isinstance(failure, MessageTimeout):
                    self._emit(
                        "secure.round_timeout",
                        partner=partner_id,
                        delivered=failure.delivered,
                    )
                else:
                    self._emit("secure.round_dropped", partner=partner_id)
                break
            if not isinstance(reply, TransferReply) or reply.descriptor is None:
                # Partner quit halfway: stop sending (tit-for-tat).
                self._emit("secure.partner_defected", partner=partner_id)
                break
            if not self._accept_owned(reply.descriptor, partner_id, network):
                break
        self._repair_with_non_swappables(transferred)

    def _initiate_bulk_swap(
        self, channel, partner_id: PublicKey, network: Network
    ) -> None:
        """Single-shot swap used when tit-for-tat is disabled (Fig 6)."""
        plain: List[SecureDescriptor] = [self.mint_fresh_descriptor()]
        transferred: List[SecureDescriptor] = []
        for _ in range(self.config.swap_length - 1):
            descriptor = self._pop_outgoing(partner_id)
            if descriptor is None:
                break
            plain.append(descriptor)
            transferred.append(descriptor)
        outgoing = tuple(
            descriptor.transfer(self.keypair, partner_id)
            for descriptor in plain
        )
        try:
            reply = channel.request(BulkSwapMessage(descriptors=outgoing))
        except MessageDropped as failure:
            if isinstance(failure, MessageTimeout):
                self._emit(
                    "secure.bulk_timeout",
                    partner=partner_id,
                    delivered=failure.delivered,
                )
            else:
                self._emit("secure.bulk_dropped", partner=partner_id)
            self._repair_with_non_swappables(transferred)
            return
        if isinstance(reply, BulkSwapReply):
            for descriptor in reply.descriptors:
                if not self._accept_owned(descriptor, partner_id, network):
                    break
        self._repair_with_non_swappables(transferred)

    def _accept_owned(
        self,
        descriptor: SecureDescriptor,
        sender_id: PublicKey,
        network: Network,
    ) -> bool:
        """Validate and store a descriptor transferred to us.

        Returns False when the dialogue should stop (sender proven
        malicious or garbage received).
        """
        if not self._validate_incoming_transfer(descriptor, sender_id):
            return False
        if not self._observe_validated(descriptor, network):
            return not self.blacklist.is_blacklisted(sender_id)
        self.view.insert(descriptor, non_swappable=False)
        return True

    def _repair_with_non_swappables(
        self, transferred: List[SecureDescriptor]
    ) -> None:
        """§V-A: backfill empty slots with non-swappable copies of
        descriptors whose ownership we just gave away."""
        for descriptor in transferred:
            if self.view.free_slots <= 0:
                break
            if self.blacklist.is_blacklisted(descriptor.creator):
                continue
            if self.view.insert(descriptor, non_swappable=True):
                self._emit(
                    "secure.non_swappable_retained", creator=descriptor.creator
                )

    # ------------------------------------------------------------------
    # partner side
    # ------------------------------------------------------------------

    def _handle_open(self, sender_id: PublicKey, opening: GossipOpen) -> Any:
        network = self._network_for_flood
        self._ingest_proofs(opening.proofs, network)
        if self.blacklist.is_blacklisted(sender_id):
            return GossipReject(
                reason="blacklisted",
                proofs=self._proof_against(sender_id),
            )

        verdict = self._validate_redemption(sender_id, opening)
        if verdict is not None:
            return GossipReject(reason=verdict)

        redemption = opening.redemption
        if opening.non_swappable:
            self._nonswap_redeemed_identities.add(redemption.timestamp)
            self._nonswap_accepted_this_cycle = True
        else:
            self._redeemed_own_timestamps.add(redemption.timestamp)
            self.redemption_cache.add(redemption, self.current_cycle)
            self.sample_cache.observe(redemption, self.current_cycle)

        self._observe_all(opening.samples, network)
        if self.blacklist.is_blacklisted(sender_id):
            return GossipReject(
                reason="blacklisted",
                proofs=self._proof_against(sender_id),
            )

        swap_budget = self.config.swap_length
        if (
            opening.non_swappable
            and self.config.non_swappable_swap_limit is not None
        ):
            swap_budget = min(swap_budget, self.config.non_swappable_swap_limit)
        self._sessions[sender_id] = _PartnerSession(
            initiator=sender_id,
            rounds_left=self.config.swap_length,
            swap_budget=swap_budget,
        )
        return GossipAccept(
            samples=self._samples_payload(),
            proofs=self.blacklist.proofs_tuple(),
        )

    def _validate_redemption(
        self, sender_id: PublicKey, opening: GossipOpen
    ) -> Optional[str]:
        """All §IV-A/§V-A acceptance rules; returns a reject reason or None."""
        redemption = opening.redemption
        if redemption.creator != self.node_id:
            return "not-my-descriptor"
        if not self._verify_chain(redemption):
            return "invalid-chain"
        if not redemption.is_spent:
            return "missing-redeem-hop"
        final = redemption.hops[-1]
        expected_kind = (
            TransferKind.NONSWAP_REDEEM
            if opening.non_swappable
            else TransferKind.REDEEM
        )
        if final.kind is not expected_kind:
            return "redeem-kind-mismatch"
        hops = redemption.hops
        redeemer = hops[-2].owner if len(hops) > 1 else redemption.creator
        if redeemer != sender_id:
            return "not-the-owner"
        if opening.non_swappable:
            # §V-A: at most one non-swappable redemption per descriptor,
            # and at most one per cycle.
            if redemption.timestamp in self._nonswap_redeemed_identities:
                return "nonswap-already-redeemed"
            if self._nonswap_accepted_this_cycle:
                return "nonswap-quota-this-cycle"
        else:
            if redemption.timestamp in self._redeemed_own_timestamps:
                # A replay or a clone of an already-spent token.  If it
                # is a clone, the sample cache observation below will
                # yield the proof; either way the gossip is refused.
                self.sample_cache.observe(redemption, self.current_cycle)
                self._drain_found_proofs()
                return "already-redeemed"
        return None

    def _handle_transfer(
        self, sender_id: PublicKey, message: TransferMessage
    ) -> TransferReply:
        network = self._network_for_flood
        session = self._sessions.get(sender_id)
        if session is None or session.rounds_left <= 0:
            return TransferReply(descriptor=None)
        session.rounds_left -= 1

        descriptor = message.descriptor
        if not self._validate_incoming_transfer(descriptor, sender_id):
            return TransferReply(descriptor=None)
        if message.round_index == 0 and not self._fresh_descriptor_ok(
            descriptor, sender_id
        ):
            self._emit("secure.stale_fresh_descriptor", sender=sender_id)
            return TransferReply(descriptor=None)
        if not self._observe_validated(descriptor, network):
            return TransferReply(descriptor=None)

        counter: Optional[SecureDescriptor] = None
        if session.swap_budget > 0:
            outgoing = self._pop_outgoing(sender_id)
            if outgoing is not None:
                session.swap_budget -= 1
                counter = outgoing.transfer(self.keypair, sender_id)
        self.view.insert(descriptor, non_swappable=False)
        return TransferReply(descriptor=counter)

    def _handle_bulk_swap(
        self, sender_id: PublicKey, message: BulkSwapMessage
    ) -> BulkSwapReply:
        network = self._network_for_flood
        session = self._sessions.get(sender_id)
        if session is None:
            return BulkSwapReply(descriptors=())
        self._sessions.pop(sender_id, None)

        accepted: List[SecureDescriptor] = []
        for index, descriptor in enumerate(message.descriptors):
            if len(accepted) >= self.config.swap_length:
                break
            if not self._validate_incoming_transfer(descriptor, sender_id):
                continue
            if index == 0 and descriptor.creator == sender_id:
                if not self._fresh_descriptor_ok(descriptor, sender_id):
                    continue
            if not self._observe_validated(descriptor, network):
                continue
            accepted.append(descriptor)

        outgoing_plain: List[SecureDescriptor] = []
        for _ in range(min(session.swap_budget, self.config.swap_length)):
            descriptor = self._pop_outgoing(sender_id)
            if descriptor is None:
                break
            outgoing_plain.append(descriptor)
        counters = tuple(
            descriptor.transfer(self.keypair, sender_id)
            for descriptor in outgoing_plain
        )
        for descriptor in accepted:
            self.view.insert(descriptor, non_swappable=False)
        # If the initiator offered fewer descriptors than we returned
        # (the link-depletion attack, §V-B), repair the deficit with
        # non-swappable copies of what we just gave away.
        self._repair_with_non_swappables(outgoing_plain)
        return BulkSwapReply(descriptors=counters)

    # ------------------------------------------------------------------
    # descriptor vetting
    # ------------------------------------------------------------------

    def _validate_incoming_transfer(
        self, descriptor: SecureDescriptor, sender_id: PublicKey
    ) -> bool:
        """Structural checks on a descriptor transferred to this node."""
        # Key equality is digest equality; the raw byte comparisons keep
        # this per-transfer gauntlet at C speed.
        my_digest = self.node_id.digest
        if descriptor.creator.digest == my_digest:
            # Our own descriptor coming home as a swap is useless: views
            # hold no self-links.  Not a violation, just dropped.
            return False
        registry = self.registry
        if descriptor._verified_by is not registry and not self._verify_chain(
            descriptor
        ):
            return False
        hops = descriptor.hops
        if not hops or hops[-1].owner.digest != my_digest:
            # A hopless descriptor is owned by its creator, which the
            # first check proved is not this node.
            return False
        if hops[-1].kind in TERMINAL_KINDS:  # spent: already redeemed
            return False
        # The previous owner (second-to-last link of the ownership
        # sequence) must be the node that handed the descriptor over.
        previous = hops[-2].owner if len(hops) > 1 else descriptor.creator
        if previous.digest != sender_id.digest:
            return False
        if descriptor.timestamp > self.clock.now_s + self._tolerance_cached:
            return False
        return True

    def _fresh_descriptor_ok(
        self, descriptor: SecureDescriptor, sender_id: PublicKey
    ) -> bool:
        """§IV-A: newly created descriptors must carry a current timestamp."""
        if descriptor.creator != sender_id:
            return True  # not a self-descriptor; no freshness constraint
        if len(descriptor.hops) != 1:
            return True  # already travelled; ages naturally
        deviation = abs(descriptor.timestamp - self.clock.now())
        return deviation <= self._tolerance()

    def _tolerance(self) -> float:
        return self._tolerance_cached

    # ------------------------------------------------------------------
    # observation and proofs
    # ------------------------------------------------------------------

    def _samples_payload(self) -> Tuple[SecureDescriptor, ...]:
        """Copies of the current view plus the redemption cache (§IV-B,
        §V-C) — sent with the first message in each direction."""
        return (*self.view.descriptors(), *self.redemption_cache.contents())

    def _verify_chain(self, descriptor: SecureDescriptor) -> bool:
        """Chain verification through the configured mode.

        Sequential mode calls :func:`verify_descriptor` directly;
        batched mode routes through the :class:`VerificationPlan` so
        single verifications share the cycle's cross-node digest memo
        with the batched sample streams.  Both compute the identical
        predicate.
        """
        plan = self._vplan
        if plan is not None:
            return plan.verify(descriptor)
        return verify_descriptor(descriptor, self.registry)

    def _observe_all(self, descriptors, network) -> None:
        plan = self._vplan
        if plan is not None:
            self.sample_cache.observe_stream_planned(
                descriptors,
                self.current_cycle,
                self.registry,
                self._blacklist_map,
                self.clock.now_s + self._tolerance_cached,
                self._drop_chains,
                self._adopt_proof,
                network,
                plan,
            )
            return
        self.sample_cache.observe_stream(
            descriptors,
            self.current_cycle,
            self.registry,
            self._blacklist_map,
            self.clock.now_s + self._tolerance_cached,
            self._drop_chains,
            self._adopt_proof,
            network,
        )

    def _observe(self, descriptor: SecureDescriptor, network) -> bool:
        """Run the §IV-B checks on one received descriptor.

        Returns True if the descriptor is acceptable for further use
        (its creator is not blacklisted and it verified).

        This is the reference form of the vetting pipeline.  The hot
        paths use :meth:`_observe_validated` (when the chain and
        timestamp were already checked) and
        ``SampleCache.observe_stream`` /
        ``SampleCache.observe_stream_planned`` (whole sample batches,
        sequential and batched verification respectively); any change
        to the rules here must be mirrored there.
        """
        registry = self.registry
        if descriptor._verified_by is not registry and not self._verify_chain(
            descriptor
        ):
            return False
        if descriptor.timestamp > self.clock.now_s + self._tolerance_cached:
            return False
        return self._observe_validated(descriptor, network)

    def _observe_validated(self, descriptor: SecureDescriptor, network) -> bool:
        """The tail of :meth:`_observe` for descriptors whose chain and
        timestamp were already checked (e.g. right after
        :meth:`_validate_incoming_transfer`, which performs the same
        verification and timestamp tests)."""
        blacklisted = self._blacklist_map
        creator = descriptor.creator
        if creator in blacklisted:
            return False
        if self._drop_chains and any(
            owner in blacklisted for owner in descriptor.owners()
        ):
            return False
        proofs = self.sample_cache.observe(descriptor, self.current_cycle)
        if proofs:
            for proof in proofs:
                self._adopt_proof(proof, network, already_validated=True)
        return creator not in blacklisted

    def _ingest_proofs(self, proofs, network) -> None:
        for proof in proofs:
            self._adopt_proof(proof, network, already_validated=False)

    def _adopt_proof(
        self, proof: ViolationProof, network, already_validated: bool
    ) -> None:
        if proof.culprit == self.node_id:
            return
        if proof.culprit in self.blacklist:
            return
        if not already_validated and not proof.validate(
            self.registry, self._freq_period
        ):
            return
        if already_validated:
            # A locally discovered violation (as opposed to a relayed
            # proof) — traced unconditionally so detection-ratio
            # experiments (Fig 7) can count it even with enforcement off.
            self._emit(
                "secure.violation_found",
                culprit=proof.culprit,
                proof_kind=proof.kind,
                identity=proof.first.identity,
            )
        if not self.config.blacklist_enabled:
            return
        self.blacklist.add(proof)
        self._purge_culprit(proof.culprit)
        self._emit(
            "secure.blacklisted",
            culprit=proof.culprit,
            proof_kind=proof.kind,
        )
        if network is not None:
            self._flood(proof, network)

    def _drain_found_proofs(self) -> None:
        """Adopt proofs discovered while no network handle was available."""
        # Sample-cache observations return proofs eagerly; this method
        # exists for call sites that observe outside an exchange.  The
        # proofs were already adopted there, so nothing to do — kept for
        # interface clarity.

    def _purge_culprit(self, culprit: PublicKey) -> None:
        self.view.purge_creator(culprit)
        if self.config.drop_chains_through_blacklisted:
            self.view.purge_if(
                lambda entry: culprit in entry.descriptor.owners()
            )
        self.sample_cache.forget_creator(culprit)
        self._sessions.pop(culprit, None)
        if self._vplan is not None:
            # Drop the culprit's chains from the shared digest memo so
            # no same-cycle batch resolves them from a stale entry
            # (verdicts are blacklist-independent crypto, so this is
            # hygiene — every receiver still filters against its own
            # live blacklist — but it keeps the memo honest).
            self._vplan.invalidate_creator(culprit)

    def _flood(self, proof: ViolationProof, network) -> None:
        """§IV-C: broadcast the proof over our current overlay links."""
        if network is None:
            return
        flood = ProofFlood(proof=proof)
        for neighbor_id in set(self.view.neighbor_ids()):
            network.push(self.node_id, neighbor_id, flood)

    def _proof_against(
        self, target: PublicKey
    ) -> Tuple[ViolationProof, ...]:
        proof = self.blacklist.proof_for(target)
        return (proof,) if proof is not None else ()

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------

    _network_for_flood: Optional[Network] = None

    def bind_network(self, network: Network) -> None:
        """Give the node a network handle for flooding outside dialogues.

        The engine's dialogue API hands initiators a channel, but proof
        flooding on the *partner* side needs a way to push one-way
        messages; experiments call this once at setup.
        """
        self._network_for_flood = network

    def bind_verification_plan(self, plan: VerificationPlan) -> None:
        """Adopt a shared batched-verification plan.

        Scenario builders call this on every node of an overlay whose
        config resolves to ``verification="batched"``, replacing the
        node's private plan with the engine-wide one so chain verdicts
        are shared network-wide within a cycle.  Binding a plan opts
        the node into the batched path regardless of its config — the
        caller owns that decision.
        """
        self._vplan = plan

    def _emit(self, kind: str, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.emit(self.current_cycle, kind, node=self.node_id, **detail)
