"""Configuration for the SecureCyclon protocol."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.sim.retry import RetryPolicy
from repro.sim.transport import resolve_transport, validate_transport

#: Accepted values of the ``verification=`` knob.
VERIFICATION_MODES = ("sequential", "batched")

#: Environment override for the knob, mirroring ``REPRO_SCALE``: a
#: config whose ``verification`` is ``None`` resolves through this
#: variable, which lets the whole experiment harness (and the golden
#: equivalence guard) flip verification modes without touching any
#: call site.
ENV_VERIFICATION = "REPRO_VERIFICATION"


def resolve_verification(mode: Optional[str]) -> str:
    """Resolve a ``verification=`` knob value to a concrete mode.

    An explicit value wins; otherwise the ``REPRO_VERIFICATION``
    environment variable; otherwise ``"sequential"`` — the default must
    stay sequential so the cycle model's RNG stream and the golden
    figure series are untouched unless a run opts in.
    """
    if mode is not None:
        return mode
    raw = os.environ.get(ENV_VERIFICATION, "").strip().lower()
    if not raw:
        return VERIFICATION_MODES[0]
    if raw not in VERIFICATION_MODES:
        valid = ", ".join(VERIFICATION_MODES)
        raise ConfigError(
            f"invalid {ENV_VERIFICATION}={raw!r}; expected one of: {valid}"
        )
    return raw


def _validate_verification(mode: Optional[str]) -> None:
    if mode is not None and mode not in VERIFICATION_MODES:
        valid = ", ".join(VERIFICATION_MODES)
        raise ConfigError(
            f"verification must be one of: {valid} (or None); got {mode!r}"
        )


@dataclass(frozen=True)
class SecureCyclonConfig:
    """SecureCyclon parameters.

    The first two mirror Cyclon (paper §II-B); the rest configure the
    security machinery of §IV–§V:

    ``redemption_cache_cycles``
        How long a redeemed descriptor is kept and gossiped as a sample
        (paper §V-C; Fig 7 sweeps 0/2/5/10 cycles).
    ``sample_horizon_cycles``
        How long observed descriptor samples stay in the cross-check
        cache.  The paper says nodes cache "all descriptors they have
        seen"; descriptors live ~ℓ cycles, so a bounded horizon (default
        2ℓ) is functionally equivalent with bounded memory (DESIGN.md).
        ``None`` selects the default.
    ``tit_for_tat``
        One-descriptor-per-round-trip transfers (§V-B).  Disabled for
        the Fig 6 "before" columns.
    ``timestamp_tolerance_seconds``
        Maximum clock deviation accepted on freshly minted descriptors
        (§IV-A).  ``None`` selects one gossip period.
    ``non_swappable_swap_limit``
        Optional cap on descriptors swapped in an exchange opened with a
        non-swappable redemption (§V-A, third restriction).
    ``drop_chains_through_blacklisted``
        If true, also discard descriptors whose ownership chain passes
        through a blacklisted node (ablation; the paper only requires
        dropping descriptors *created by* blacklisted nodes).
    ``blacklist_enabled``
        If false, violations are still detected and traced but no
        blacklisting, purging, or flooding happens.  Used by the Fig 7
        experiment, which measures raw detection ratios and therefore
        must keep cloners alive after their first offence.
    ``retry``
        What an initiator does when a dialogue *opening* times out
        under the event runtime (:class:`~repro.sim.retry.RetryPolicy`:
        none/immediate/backoff).  Each retry redeems the next oldest
        view entry — the timed-out redemption is spent and never
        re-sent — and only un-opened dialogues retry, so the cycle's
        single fresh mint cannot be duplicated.  Inert under the cycle
        runtime (no timeouts there).
    ``frequency_tolerance_seconds``
        Slack subtracted from the gossip period in *every* frequency
        predicate this node evaluates: the §IV-B self-guard before
        minting, the sample-cache cross-check, and relayed-proof
        validation.  Two mints conflict only when their timestamps are
        closer than ``period - tolerance``.  Needed once per-node clock
        drift exists (:class:`~repro.sim.clock.ClockDrift`): a slightly
        slow clock stamps honest once-per-period mints fractionally
        under one period apart, and without slack honest nodes would
        either throttle themselves or — worse — be provably
        incriminated by their own honest timestamps.  Size it to the
        deployment's drift bound (``>= 2 * max drift offset over one
        period``); the flip side is that attackers may legally mint
        every ``period - tolerance`` seconds, so keep it small.  Must
        stay below one period.  The default of zero preserves the
        paper's exact predicate.
    ``verification``
        How ownership chains are verified: ``"sequential"`` walks one
        chain at a time through
        :func:`repro.core.descriptor.verify_descriptor`;
        ``"batched"`` routes whole sample batches through the
        cycle-scoped :class:`repro.crypto.batch.VerificationPlan`
        (flat-buffer MAC kernel plus a cross-node digest memo, so each
        distinct chain is checked once network-wide per cycle).  Both
        modes compute the identical predicate — the choice is
        performance-only and guarded bit-for-bit by the golden series.
        ``None`` (the default) resolves through the
        ``REPRO_VERIFICATION`` environment variable and falls back to
        sequential.
    ``transport``
        How messages cross the simulated network: ``"object"`` passes
        the sender's Python objects by reference (the classic
        in-process semantics); ``"wire"`` frames every dialogue leg
        and push through the binary codec so each receiver decodes
        fresh objects from real bytes, and traffic accounting switches
        from budgeted to measured frame sizes.  The codec is lossless
        and consumes no RNG, so outputs are bit-for-bit identical
        under both modes (golden-guarded) — what changes is the work:
        wire mode is where ``verification="batched"`` pays off
        network-wide, because shared-object identity no longer
        memoises verification away.  ``None`` (the default) resolves
        through the ``REPRO_TRANSPORT`` environment variable and falls
        back to object passing.
    """

    view_length: int = 20
    swap_length: int = 3
    redemption_cache_cycles: int = 5
    sample_horizon_cycles: Optional[int] = None
    tit_for_tat: bool = True
    timestamp_tolerance_seconds: Optional[float] = None
    non_swappable_swap_limit: Optional[int] = None
    drop_chains_through_blacklisted: bool = False
    blacklist_enabled: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    frequency_tolerance_seconds: float = 0.0
    verification: Optional[str] = None
    transport: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_verification(self.verification)
        validate_transport(self.transport)
        if self.view_length < 1:
            raise ConfigError("view_length must be >= 1")
        if self.swap_length < 1:
            raise ConfigError("swap_length must be >= 1")
        if self.swap_length > self.view_length:
            raise ConfigError(
                f"swap_length ({self.swap_length}) cannot exceed "
                f"view_length ({self.view_length})"
            )
        if self.redemption_cache_cycles < 0:
            raise ConfigError("redemption_cache_cycles must be >= 0")
        if (
            self.sample_horizon_cycles is not None
            and self.sample_horizon_cycles < 1
        ):
            raise ConfigError("sample_horizon_cycles must be >= 1")
        if (
            self.timestamp_tolerance_seconds is not None
            and self.timestamp_tolerance_seconds < 0
        ):
            raise ConfigError("timestamp_tolerance_seconds must be >= 0")
        if (
            self.non_swappable_swap_limit is not None
            and self.non_swappable_swap_limit < 0
        ):
            raise ConfigError("non_swappable_swap_limit must be >= 0")
        if self.frequency_tolerance_seconds < 0:
            raise ConfigError("frequency_tolerance_seconds must be >= 0")

    def effective_verification(self) -> str:
        """The resolved verification mode (see :func:`resolve_verification`).

        Resolved at call time, not construction time, so the
        environment override can flip an already-built default config —
        the golden equivalence guard relies on this.
        """
        return resolve_verification(self.verification)

    def effective_transport(self) -> str:
        """The resolved transport mode (see
        :func:`repro.sim.transport.resolve_transport`).

        Resolved at call time, not construction time, so the
        ``REPRO_TRANSPORT`` override can flip an already-built default
        config — the golden equivalence guard relies on this.
        """
        return resolve_transport(self.transport)

    @property
    def effective_sample_horizon(self) -> int:
        """Sample-cache horizon in cycles (defaults to 2ℓ)."""
        if self.sample_horizon_cycles is not None:
            return self.sample_horizon_cycles
        return 2 * self.view_length

    def effective_timestamp_tolerance(self, period_seconds: float) -> float:
        """Clock-deviation tolerance (defaults to one gossip period)."""
        if self.timestamp_tolerance_seconds is not None:
            return self.timestamp_tolerance_seconds
        return period_seconds

    def effective_frequency_period(self, period_seconds: float) -> float:
        """The drift-tolerant period used by every frequency predicate.

        Raises :class:`~repro.errors.ConfigError` when the configured
        slack swallows the whole period — a predicate over a
        non-positive window would let attackers mint freely.
        """
        effective = period_seconds - self.frequency_tolerance_seconds
        if effective <= 0:
            raise ConfigError(
                "frequency_tolerance_seconds "
                f"({self.frequency_tolerance_seconds}) must stay below "
                f"the gossip period ({period_seconds})"
            )
        return effective
