"""Wire encoding and size accounting (paper §VI-A).

Two distinct services live here:

* **Size accounting** with the paper's exact budget — 368 bits of node
  info plus 512 bits per ownership transfer — used by the network-cost
  experiment to reproduce the §VI-A table.
* **Binary serialisation** of descriptors and proofs, used by
  round-trip tests and to report *measured* (as opposed to budgeted)
  message sizes.  The measured format carries one extra byte per hop
  (the transfer kind) and small framing headers, which is why measured
  sizes run a few percent above the paper's back-of-the-envelope
  numbers.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.descriptor import (
    OwnershipHop,
    SecureDescriptor,
    TransferKind,
)
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.proofs import CloningProof, FrequencyProof, ViolationProof
from repro.crypto.keys import PublicKey
from repro.crypto.signing import Signature
from repro.errors import DescriptorError
from repro.sim.network import NetworkAddress

NODE_INFO_BITS = 256 + 32 + 16 + 64
"""Public key + IPv4 + port + timestamp, as budgeted in §VI-A."""

HOP_BITS = 256 + 256
"""One ownership transfer: appended public key + signature (§VI-A)."""

_HEADER_BITS = 16  # small per-message framing allowance


def descriptor_bits(descriptor: SecureDescriptor) -> int:
    """Paper-budget size of one descriptor: ``368 + 512·t`` bits."""
    return NODE_INFO_BITS + HOP_BITS * len(descriptor.hops)


def proof_bits(proof: ViolationProof) -> int:
    """A proof is two conflicting descriptors."""
    return descriptor_bits(proof.first) + descriptor_bits(proof.second)


def payload_bits(payload: Any) -> int:
    """Paper-budget size of any SecureCyclon message."""
    if isinstance(payload, GossipOpen):
        return (
            _HEADER_BITS
            + descriptor_bits(payload.redemption)
            + sum(descriptor_bits(d) for d in payload.samples)
            + sum(proof_bits(p) for p in payload.proofs)
        )
    if isinstance(payload, GossipAccept):
        return (
            _HEADER_BITS
            + sum(descriptor_bits(d) for d in payload.samples)
            + sum(proof_bits(p) for p in payload.proofs)
        )
    if isinstance(payload, GossipReject):
        return _HEADER_BITS + sum(proof_bits(p) for p in payload.proofs)
    if isinstance(payload, TransferMessage):
        return _HEADER_BITS + descriptor_bits(payload.descriptor)
    if isinstance(payload, TransferReply):
        if payload.descriptor is None:
            return _HEADER_BITS
        return _HEADER_BITS + descriptor_bits(payload.descriptor)
    if isinstance(payload, BulkSwapMessage):
        return _HEADER_BITS + sum(
            descriptor_bits(d) for d in payload.descriptors
        )
    if isinstance(payload, BulkSwapReply):
        return _HEADER_BITS + sum(
            descriptor_bits(d) for d in payload.descriptors
        )
    if isinstance(payload, ProofFlood):
        return _HEADER_BITS + proof_bits(payload.proof)
    return _HEADER_BITS


def payload_bytes(payload: Any) -> int:
    """Paper-budget size of a message in whole bytes."""
    return (payload_bits(payload) + 7) // 8


# ----------------------------------------------------------------------
# binary serialisation
# ----------------------------------------------------------------------

_KIND_CODES = {
    TransferKind.TRANSFER: 0,
    TransferKind.REDEEM: 1,
    TransferKind.NONSWAP_REDEEM: 2,
}
_CODE_KINDS = {code: kind for kind, code in _KIND_CODES.items()}

# Hop kinds are a closed three-element set; pre-encoding the kind byte
# per kind turns the per-hop ``struct.pack`` into a dict probe.
_KIND_BYTES = {kind: bytes([code]) for kind, code in _KIND_CODES.items()}

# Precompiled Structs for the record layout (see repro.core.codec for
# the rationale): the birth fields, the hop count, and the single
# leading byte of a proof record.
_BIRTH = struct.Struct(">IHd")
_BIRTH_SIZE = _BIRTH.size
_HOP_COUNT = struct.Struct(">H")
_U8 = struct.Struct(">B")
_U32 = struct.Struct(">I")


def encode_descriptor(descriptor: SecureDescriptor) -> bytes:
    """Serialise a descriptor to a canonical byte string."""
    parts = [
        descriptor.creator.digest,
        _BIRTH.pack(descriptor.address.host, descriptor.address.port,
                    descriptor.timestamp),
        _HOP_COUNT.pack(len(descriptor.hops)),
    ]
    append = parts.append
    kind_bytes = _KIND_BYTES
    for hop in descriptor.hops:
        # The signature's signer is implied by chain position (it is
        # the previous owner), so it is not serialised — matching the
        # paper's 512-bits-per-hop budget.
        append(hop.owner.digest)
        append(kind_bytes[hop.kind])
        append(hop.signature.mac)
    return b"".join(parts)


def decode_descriptor(data: bytes) -> SecureDescriptor:
    """Inverse of :func:`encode_descriptor`."""
    try:
        offset = 0
        creator = PublicKey(data[offset : offset + 32])
        offset += 32
        host, port, timestamp = _BIRTH.unpack_from(data, offset)
        offset += _BIRTH_SIZE
        (hop_count,) = _HOP_COUNT.unpack_from(data, offset)
        offset += 2
        hops = []
        signer = creator
        for _ in range(hop_count):
            owner = PublicKey(data[offset : offset + 32])
            offset += 32
            (kind_code,) = _U8.unpack_from(data, offset)
            offset += 1
            mac = data[offset : offset + 32]
            offset += 32
            if len(mac) != 32:
                raise DescriptorError("truncated hop signature")
            hops.append(
                OwnershipHop(
                    owner=owner,
                    kind=_CODE_KINDS[kind_code],
                    signature=Signature(signer=signer, mac=mac),
                )
            )
            signer = owner
        if offset != len(data):
            raise DescriptorError("trailing bytes after descriptor")
        return SecureDescriptor(
            creator=creator,
            address=NetworkAddress(host=host, port=port),
            timestamp=timestamp,
            hops=tuple(hops),
        )
    except (struct.error, ValueError, KeyError, IndexError) as exc:
        raise DescriptorError(f"malformed descriptor bytes: {exc}") from exc


def encoded_descriptor_size(descriptor: SecureDescriptor) -> int:
    """Measured wire size in bytes of the serialised descriptor."""
    return len(encode_descriptor(descriptor))


def encode_proof(proof: ViolationProof) -> bytes:
    """Serialise a proof (kind byte + two length-prefixed descriptors)."""
    kind_code = 0 if isinstance(proof, CloningProof) else 1
    first = encode_descriptor(proof.first)
    second = encode_descriptor(proof.second)
    return b"".join(
        [
            _U8.pack(kind_code),
            proof.culprit.digest,
            _U32.pack(len(first)),
            first,
            _U32.pack(len(second)),
            second,
        ]
    )


def decode_proof(data: bytes) -> ViolationProof:
    """Inverse of :func:`encode_proof`."""
    try:
        (kind_code,) = _U8.unpack_from(data, 0)
        culprit = PublicKey(data[1:33])
        offset = 33
        (first_len,) = _U32.unpack_from(data, offset)
        offset += 4
        first = decode_descriptor(data[offset : offset + first_len])
        offset += first_len
        (second_len,) = _U32.unpack_from(data, offset)
        offset += 4
        second = decode_descriptor(data[offset : offset + second_len])
        offset += second_len
        if offset != len(data):
            raise DescriptorError("trailing bytes after proof")
    except (struct.error, ValueError, IndexError) as exc:
        raise DescriptorError(f"malformed proof bytes: {exc}") from exc
    cls = CloningProof if kind_code == 0 else FrequencyProof
    return cls(first=first, second=second, culprit=culprit)
