"""The redemption cache (paper §V-C).

A descriptor redeemed at a very high age may never have the chance to
meet one of its clones inside anyone's sample cache — it dies too soon.
The redemption cache closes that window: redeemed descriptors are kept
for a few cycles and shipped as samples with every gossip message, so
late clones of a just-redeemed descriptor still get cross-checked.

Both ends of a redemption keep a copy: the redeemer spent the token and
the creator accepted it, and either copy serves as evidence against a
clone.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.descriptor import DescriptorId, SecureDescriptor


class RedemptionCache:
    """Recently redeemed descriptors, retained for a fixed cycle count.

    ``retention_cycles`` of zero disables the cache entirely (the
    "no redemption cache" curve of Fig 7).
    """

    def __init__(self, retention_cycles: int) -> None:
        if retention_cycles < 0:
            raise ValueError("retention_cycles must be >= 0")
        self._retention = retention_cycles
        self._entries: Deque[Tuple[int, SecureDescriptor]] = deque()
        # contents() is called twice per gossip exchange; the rendered
        # list is cached until the cache next mutates.
        self._contents_cache: Optional[List[SecureDescriptor]] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def retention_cycles(self) -> int:
        return self._retention

    def add(self, descriptor: SecureDescriptor, cycle: int) -> None:
        """Retain ``descriptor`` (just redeemed) starting at ``cycle``."""
        if self._retention == 0:
            return
        self._entries.append((cycle, descriptor))
        self._contents_cache = None

    def contents(self) -> List[SecureDescriptor]:
        """Current cache contents, oldest first (sent as gossip samples).

        Returns a cached list; callers must treat it as read-only.
        """
        cached = self._contents_cache
        if cached is None:
            cached = [descriptor for _, descriptor in self._entries]
            self._contents_cache = cached
        return cached

    def find(self, identity: DescriptorId) -> Optional[SecureDescriptor]:
        """The cached redemption of ``identity``, if still retained."""
        for _, descriptor in self._entries:
            if descriptor.identity == identity:
                return descriptor
        return None

    def expire(self, cycle: int) -> int:
        """Drop entries older than the retention window."""
        dropped = 0
        while self._entries and self._entries[0][0] <= cycle - self._retention:
            self._entries.popleft()
            dropped += 1
        if dropped:
            self._contents_cache = None
        return dropped
