"""SecureCyclon: the paper's primary contribution.

The public surface of this package:

* :class:`~repro.core.config.SecureCyclonConfig` — protocol parameters;
* :class:`~repro.core.node.SecureCyclonNode` — a correct participant;
* :class:`~repro.core.descriptor.SecureDescriptor` and friends — the
  token-like descriptors with chains of ownership;
* :mod:`~repro.core.proofs` — indisputable violation proofs;
* :mod:`~repro.core.wire` — wire sizes and serialisation.
"""

from repro.core.blacklist import Blacklist
from repro.core.chain import ChainComparison, ChainRelation, compare_chains
from repro.core.config import SecureCyclonConfig
from repro.core.descriptor import (
    DescriptorId,
    OwnershipHop,
    SecureDescriptor,
    TransferKind,
    mint,
    verify_descriptor,
)
from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.node import SecureCyclonNode
from repro.core.proofs import (
    CloningProof,
    FrequencyProof,
    ViolationProof,
    build_cloning_proof,
    build_frequency_proof,
)
from repro.core.redemption import RedemptionCache
from repro.core.samples import SampleCache
from repro.core.view import SecureView, ViewEntry

__all__ = [
    "Blacklist",
    "ChainComparison",
    "ChainRelation",
    "compare_chains",
    "SecureCyclonConfig",
    "DescriptorId",
    "OwnershipHop",
    "SecureDescriptor",
    "TransferKind",
    "mint",
    "verify_descriptor",
    "BulkSwapMessage",
    "BulkSwapReply",
    "GossipAccept",
    "GossipOpen",
    "GossipReject",
    "ProofFlood",
    "TransferMessage",
    "TransferReply",
    "SecureCyclonNode",
    "CloningProof",
    "FrequencyProof",
    "ViolationProof",
    "build_cloning_proof",
    "build_frequency_proof",
    "RedemptionCache",
    "SampleCache",
    "SecureView",
    "ViewEntry",
]
