"""SecureCyclon's enhanced node descriptors (paper §IV-A).

A descriptor is born with its creator's public key, network address and
a wall-clock timestamp.  Every time it changes hands, a *hop* is
appended: the new owner's public key plus a signature by the *previous*
owner over everything so far.  The resulting chain of ownership makes a
descriptor an unforgeable, unclonable token:

* nobody can mint a descriptor for another node (the first hop must be
  signed by the creator);
* transferring the same descriptor twice necessarily produces two
  chains that fork at the double-spender, which is indisputable proof
  of a cloning violation (§IV-B).

Redemption — presenting the descriptor back to its creator to initiate
gossip — is modelled as a final hop whose target *is* the creator (see
DESIGN.md).  A redeemed-then-cloned descriptor therefore forks exactly
like any other double transfer.  Non-swappable redemptions (§V-A) carry
a distinct hop kind so the sanctioned fork they create toward the
creator is never mistaken for a violation.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from itertools import islice
from typing import Optional, Tuple

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import Signature, _compute_mac, verify
from repro.errors import DescriptorError
from repro.sim.network import NetworkAddress


class TransferKind(enum.Enum):
    """Why a hop was appended to the chain.

    ``TRANSFER`` is an ordinary ownership transfer during a swap.
    ``REDEEM`` is the final hop back to the creator that spends the
    descriptor for a gossip exchange.  ``NONSWAP_REDEEM`` is a
    redemption performed with a retained non-swappable copy (§V-A);
    forks it creates against the live copy are sanctioned.
    """

    TRANSFER = "transfer"
    REDEEM = "redeem"
    NONSWAP_REDEEM = "nonswap_redeem"


TERMINAL_KINDS = (TransferKind.REDEEM, TransferKind.NONSWAP_REDEEM)


@dataclass(frozen=True, slots=True)
class OwnershipHop:
    """One link of the chain: ``owner`` received the descriptor.

    ``signature`` was produced by the *previous* owner (the creator for
    the first hop) over the descriptor digest up to and including this
    hop, so the chain cannot be truncated, reordered or grafted.

    Hop objects are created exactly once, by :meth:`SecureDescriptor.
    transfer`, and shared by every descendant chain — two chains that
    contain the *same hop object* at the same position are therefore
    guaranteed to agree on the whole prefix up to it, which the chain
    comparison exploits.
    """

    owner: PublicKey
    kind: TransferKind
    signature: Signature


@dataclass(frozen=True, slots=True)
class DescriptorId:
    """The identity of a descriptor: its creator and birth timestamp.

    Two descriptors with equal identity are copies of the same token;
    their chains must be prefix-compatible or someone cheated.
    """

    creator: PublicKey
    timestamp: float
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        # Identities key the sample caches of every node; cache the hash.
        object.__setattr__(
            self, "_hash", hash((self.creator, self.timestamp))
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DescriptorId({self.creator.hex()}@{self.timestamp:g})"


@dataclass(frozen=True, slots=True)
class SecureDescriptor:
    """An enhanced descriptor: node info plus the chain of ownership.

    Slotted, with the lazily computed digests and the verification memo
    declared as slots: the simulation reads these fields for every
    received descriptor, and a slot load is the cheapest attribute
    access Python offers.  The ``_``-prefixed fields are caches, not
    state — they never influence equality or hashing.
    """

    creator: PublicKey
    address: NetworkAddress
    timestamp: float
    hops: Tuple[OwnershipHop, ...] = ()
    # Pre-computed (creator, timestamp) pair — the descriptor's identity.
    # Eager because it is read on every cache lookup in the simulation.
    identity: DescriptorId = field(
        init=False, compare=False, repr=False, default=None
    )
    _base_digest: Optional[bytes] = field(
        init=False, compare=False, repr=False, default=None
    )
    _chain_digest: Optional[bytes] = field(
        init=False, compare=False, repr=False, default=None
    )
    _attested_digest: Optional[bytes] = field(
        init=False, compare=False, repr=False, default=None
    )
    # The registry this descriptor last verified against (see
    # verify_descriptor) — propagated to children on transfer.
    _verified_by: object = field(
        init=False, compare=False, repr=False, default=None
    )
    # Content-addressed fingerprint of the whole chain, the batched-
    # verification memo key (repro.crypto.batch._content_key).  Filled
    # lazily by the plan, or eagerly by the zero-copy wire decoder —
    # which derives it from the record bytes it just parsed, one
    # C-level hash instead of a per-hop Python walk.  Content-
    # determined and immutable, so it never expires.
    _content_key: Optional[bytes] = field(
        init=False, compare=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "identity",
            DescriptorId(creator=self.creator, timestamp=self.timestamp),
        )

    # ------------------------------------------------------------------
    # identity and ownership
    # ------------------------------------------------------------------

    @property
    def current_owner(self) -> PublicKey:
        """Who may transfer or redeem this descriptor next."""
        if self.hops:
            return self.hops[-1].owner
        return self.creator

    def owners(self) -> Tuple[PublicKey, ...]:
        """The full ownership sequence, creator first."""
        return (self.creator,) + tuple(hop.owner for hop in self.hops)

    @property
    def transfer_count(self) -> int:
        return len(self.hops)

    @property
    def is_spent(self) -> bool:
        """True once a terminal (redeem) hop has been appended."""
        return bool(self.hops) and self.hops[-1].kind in TERMINAL_KINDS

    def age_cycles(self, now: float, period_seconds: float) -> int:
        """Age in whole cycles at wall-clock time ``now``."""
        if period_seconds <= 0:
            raise DescriptorError("period must be positive")
        return max(0, int((now - self.timestamp) // period_seconds))

    # ------------------------------------------------------------------
    # digests and signing payloads
    # ------------------------------------------------------------------

    def base_digest(self) -> bytes:
        """Digest of the birth fields (creator, address, timestamp)."""
        cached = self._base_digest
        if cached is not None:
            return cached
        digest = hashlib.sha256(
            self.creator.digest
            + self.address.host.to_bytes(4, "big")
            + self.address.port.to_bytes(2, "big")
            + repr(self.timestamp).encode("ascii")
        ).digest()
        object.__setattr__(self, "_base_digest", digest)
        return digest

    def chain_digest(self) -> bytes:
        """Running digest over the birth fields and every hop.

        Cached: descriptors are immutable and every transfer extends
        the digest of its parent, so in a live simulation the full walk
        below only runs for descriptors rebuilt from the wire.
        """
        cached = self._chain_digest
        if cached is not None:
            return cached
        digest = self.base_digest()
        for hop in self.hops:
            digest = _extend_digest(digest, hop.owner, hop.kind)
        object.__setattr__(self, "_chain_digest", digest)
        return digest

    def attested_digest(self) -> bytes:
        """Running digest over the chain *including* each hop signature.

        Two descriptors share an attested digest iff they carry the same
        birth fields, the same hop sequence *and* the same signature
        MACs, so an attested digest uniquely fingerprints a fully
        attested chain (collision resistance of SHA-256 is assumed, as
        everywhere in the idealised crypto layer).  Prefix-trust
        verification keys on this digest: see :func:`verify_descriptor`.
        Incremental like :meth:`chain_digest` — each transfer extends
        the cached parent state.
        """
        cached = self._attested_digest
        if cached is not None:
            return cached
        attested = self.base_digest()
        for hop in self.hops:
            attested = _extend_attested(
                attested, hop.owner, hop.kind, hop.signature.mac
            )
        object.__setattr__(self, "_attested_digest", attested)
        return attested

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------

    def transfer(
        self,
        owner_keypair: KeyPair,
        new_owner: PublicKey,
        kind: TransferKind = TransferKind.TRANSFER,
    ) -> "SecureDescriptor":
        """Hand this descriptor to ``new_owner``, signed by the owner.

        ``owner_keypair`` must belong to the current owner — this is the
        API-level embodiment of "only the owner can transfer".  Terminal
        kinds must target the creator, and nothing may follow them.
        """
        hops = self.hops
        last_hop = hops[-1] if hops else None
        owner = last_hop.owner if last_hop is not None else self.creator
        if owner_keypair.public.digest != owner.digest:
            raise DescriptorError(
                f"{owner_keypair.public.hex()} is not the current owner "
                f"({owner.hex()})"
            )
        if last_hop is not None and last_hop.kind in TERMINAL_KINDS:
            raise DescriptorError("descriptor already redeemed")
        if kind in TERMINAL_KINDS and new_owner != self.creator:
            raise DescriptorError("redemption hops must target the creator")
        new_digest = _extend_digest(self.chain_digest(), new_owner, kind)
        # Inlined sign() and direct slot assembly: one transfer per
        # descriptor per cycle makes this the hottest signing site.
        fill = object.__setattr__
        signature = object.__new__(Signature)
        fill(signature, "signer", owner_keypair.public)
        fill(signature, "mac", _compute_mac(owner_keypair.seed, new_digest))
        hop = object.__new__(OwnershipHop)
        fill(hop, "owner", new_owner)
        fill(hop, "kind", kind)
        fill(hop, "signature", signature)
        # Transfers are the single hottest allocation site of the
        # simulation, so the child is assembled directly instead of
        # going through the dataclass __init__/__post_init__ (which
        # would re-derive the identity the parent already carries).
        child = object.__new__(SecureDescriptor)
        fill(child, "creator", self.creator)
        fill(child, "address", self.address)
        fill(child, "timestamp", self.timestamp)
        fill(child, "hops", hops + (hop,))
        fill(child, "identity", self.identity)
        fill(child, "_base_digest", self._base_digest)
        fill(child, "_chain_digest", new_digest)
        # The attested digest is only consulted by full (non-memoised)
        # verification, which the memo below makes rare — computing it
        # lazily there beats one eager hash per transfer here.  Same
        # for the batched-verification content key.
        fill(child, "_attested_digest", None)
        fill(child, "_content_key", None)
        # The new hop was signed here and now with the genuine owner
        # key, so a child of a verified parent is verified by
        # construction — propagate the memo instead of re-running the
        # whole chain of HMACs at the receiver.
        fill(child, "_verified_by", self._verified_by)
        return child

    def redeem(
        self,
        owner_keypair: KeyPair,
        non_swappable: bool = False,
    ) -> "SecureDescriptor":
        """Spend this descriptor for a gossip exchange with its creator."""
        kind = (
            TransferKind.NONSWAP_REDEEM if non_swappable else TransferKind.REDEEM
        )
        return self.transfer(owner_keypair, self.creator, kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "->".join(pk.hex(6) for pk in self.owners())
        return f"SecureDescriptor({path}@{self.timestamp:g})"


# Hop kinds are a tiny closed set; pre-encode their wire bytes so the
# per-hop digest extension is a single one-shot hash call.
_KIND_BYTES = {kind: kind.value.encode("ascii") for kind in TransferKind}


def _extend_digest(
    digest: bytes, owner: PublicKey, kind: TransferKind
) -> bytes:
    return hashlib.sha256(
        digest + owner.digest + _KIND_BYTES[kind]
    ).digest()


def _extend_attested(
    attested: bytes, owner: PublicKey, kind: TransferKind, mac: bytes
) -> bytes:
    return hashlib.sha256(
        attested + owner.digest + _KIND_BYTES[kind] + mac
    ).digest()


def mint(
    keypair: KeyPair, address: NetworkAddress, timestamp: float
) -> SecureDescriptor:
    """Create a brand-new descriptor of the key pair's node."""
    return SecureDescriptor(
        creator=keypair.public, address=address, timestamp=timestamp, hops=()
    )


# ----------------------------------------------------------------------
# chain verification (memoised per registry)
# ----------------------------------------------------------------------

# Upper bound on the registry-level prefix-trust cache.  Each entry is
# a 32-byte digest plus bytes-object and dict-slot overhead — roughly
# 150 B all-in — so a full cache is on the order of 40 MB.  Eviction
# drops the oldest eighth.
_TRUSTED_CACHE_MAX = 1 << 18


def verify_descriptor(descriptor: SecureDescriptor, registry) -> bool:
    """Check every hop signature and the structural chain rules.

    Structural rules: terminal hops target the creator and appear only
    in final position.  Two memo layers keep repeated verification off
    the hot path:

    * **per-object memo** — descriptors are immutable and shared, so a
      successful verification is recorded on the object (``_verified_by``)
      and every later sighting of the same object is O(1);
    * **prefix-trust cache** — the registry remembers the *attested
      digest* (chain content + signature MACs) of every chain it has
      fully verified.  Verifying a descriptor whose chain extends an
      already-trusted chain — e.g. one rebuilt from the wire, or a
      longer copy of a cached sample — only runs the signature HMACs
      for the new suffix hops instead of re-walking from the creator.
      Structural rules and signer-continuity are still checked on every
      hop (they are cheap equality tests), so a forged hop can never
      hide behind a trusted prefix.
    """
    if descriptor._verified_by is registry:
        return True

    hops = descriptor.hops
    creator = descriptor.creator
    digest = descriptor.base_digest()
    attested = digest
    trusted = getattr(registry, "trusted_chain_digests", None)
    last = len(hops) - 1
    signer = creator
    # Pass 1: structural checks, digest extension, deepest trusted prefix.
    digests: list = []
    suffix_start = 0
    for index, hop in enumerate(hops):
        kind = hop.kind
        if kind in TERMINAL_KINDS and (index != last or hop.owner != creator):
            return False
        if hop.signature.signer != signer:
            return False
        digest = _extend_digest(digest, hop.owner, kind)
        digests.append(digest)
        attested = _extend_attested(attested, hop.owner, kind, hop.signature.mac)
        if trusted is not None and attested in trusted:
            suffix_start = index + 1
        signer = hop.owner
    # Pass 2: HMAC-verify only the hops past the deepest trusted prefix.
    for index in range(suffix_start, len(hops)):
        if not verify(registry, hops[index].signature, digests[index]):
            return False

    if descriptor._chain_digest is None:
        object.__setattr__(descriptor, "_chain_digest", digest)
    if descriptor._attested_digest is None:
        object.__setattr__(descriptor, "_attested_digest", attested)
    object.__setattr__(descriptor, "_verified_by", registry)
    if trusted is not None and hops:
        trusted[attested] = None
        if len(trusted) > _TRUSTED_CACHE_MAX:
            for stale in list(islice(iter(trusted), _TRUSTED_CACHE_MAX // 8)):
                del trusted[stale]
    return True


def require_valid(descriptor: SecureDescriptor, registry) -> None:
    """Raise :class:`DescriptorError` unless the descriptor verifies."""
    if not verify_descriptor(descriptor, registry):
        raise DescriptorError(f"invalid ownership chain on {descriptor!r}")
