"""SecureCyclon's enhanced node descriptors (paper §IV-A).

A descriptor is born with its creator's public key, network address and
a wall-clock timestamp.  Every time it changes hands, a *hop* is
appended: the new owner's public key plus a signature by the *previous*
owner over everything so far.  The resulting chain of ownership makes a
descriptor an unforgeable, unclonable token:

* nobody can mint a descriptor for another node (the first hop must be
  signed by the creator);
* transferring the same descriptor twice necessarily produces two
  chains that fork at the double-spender, which is indisputable proof
  of a cloning violation (§IV-B).

Redemption — presenting the descriptor back to its creator to initiate
gossip — is modelled as a final hop whose target *is* the creator (see
DESIGN.md).  A redeemed-then-cloned descriptor therefore forks exactly
like any other double transfer.  Non-swappable redemptions (§V-A) carry
a distinct hop kind so the sanctioned fork they create toward the
creator is never mistaken for a violation.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Tuple

from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import Signature, sign, verify
from repro.errors import DescriptorError
from repro.sim.network import NetworkAddress


class TransferKind(enum.Enum):
    """Why a hop was appended to the chain.

    ``TRANSFER`` is an ordinary ownership transfer during a swap.
    ``REDEEM`` is the final hop back to the creator that spends the
    descriptor for a gossip exchange.  ``NONSWAP_REDEEM`` is a
    redemption performed with a retained non-swappable copy (§V-A);
    forks it creates against the live copy are sanctioned.
    """

    TRANSFER = "transfer"
    REDEEM = "redeem"
    NONSWAP_REDEEM = "nonswap_redeem"


TERMINAL_KINDS = (TransferKind.REDEEM, TransferKind.NONSWAP_REDEEM)


@dataclass(frozen=True)
class OwnershipHop:
    """One link of the chain: ``owner`` received the descriptor.

    ``signature`` was produced by the *previous* owner (the creator for
    the first hop) over the descriptor digest up to and including this
    hop, so the chain cannot be truncated, reordered or grafted.
    """

    owner: PublicKey
    kind: TransferKind
    signature: Signature


@dataclass(frozen=True)
class DescriptorId:
    """The identity of a descriptor: its creator and birth timestamp.

    Two descriptors with equal identity are copies of the same token;
    their chains must be prefix-compatible or someone cheated.
    """

    creator: PublicKey
    timestamp: float

    def __post_init__(self) -> None:
        # Identities key the sample caches of every node; cache the hash.
        object.__setattr__(
            self, "_hash", hash((self.creator, self.timestamp))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DescriptorId({self.creator.hex()}@{self.timestamp:g})"


@dataclass(frozen=True)
class SecureDescriptor:
    """An enhanced descriptor: node info plus the chain of ownership."""

    creator: PublicKey
    address: NetworkAddress
    timestamp: float
    hops: Tuple[OwnershipHop, ...] = ()
    # Pre-computed (creator, timestamp) pair — the descriptor's identity.
    # Eager because it is read on every cache lookup in the simulation.
    identity: DescriptorId = field(
        init=False, compare=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "identity",
            DescriptorId(creator=self.creator, timestamp=self.timestamp),
        )

    # ------------------------------------------------------------------
    # identity and ownership
    # ------------------------------------------------------------------

    @property
    def current_owner(self) -> PublicKey:
        """Who may transfer or redeem this descriptor next."""
        if self.hops:
            return self.hops[-1].owner
        return self.creator

    def owners(self) -> Tuple[PublicKey, ...]:
        """The full ownership sequence, creator first."""
        return (self.creator,) + tuple(hop.owner for hop in self.hops)

    @property
    def transfer_count(self) -> int:
        return len(self.hops)

    @property
    def is_spent(self) -> bool:
        """True once a terminal (redeem) hop has been appended."""
        return bool(self.hops) and self.hops[-1].kind in TERMINAL_KINDS

    def age_cycles(self, now: float, period_seconds: float) -> int:
        """Age in whole cycles at wall-clock time ``now``."""
        if period_seconds <= 0:
            raise DescriptorError("period must be positive")
        return max(0, int((now - self.timestamp) // period_seconds))

    # ------------------------------------------------------------------
    # digests and signing payloads
    # ------------------------------------------------------------------

    def base_digest(self) -> bytes:
        """Digest of the birth fields (creator, address, timestamp)."""
        hasher = hashlib.sha256()
        hasher.update(self.creator.digest)
        hasher.update(self.address.host.to_bytes(4, "big"))
        hasher.update(self.address.port.to_bytes(2, "big"))
        hasher.update(repr(self.timestamp).encode("ascii"))
        return hasher.digest()

    def chain_digest(self) -> bytes:
        """Running digest over the birth fields and every hop.

        Cached: descriptors are immutable and every transfer extends
        the digest of its parent.
        """
        cached = self.__dict__.get("_chain_digest")
        if cached is not None:
            return cached
        digest = self.base_digest()
        for hop in self.hops:
            digest = _extend_digest(digest, hop.owner, hop.kind)
        object.__setattr__(self, "_chain_digest", digest)
        return digest

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------

    def transfer(
        self,
        owner_keypair: KeyPair,
        new_owner: PublicKey,
        kind: TransferKind = TransferKind.TRANSFER,
    ) -> "SecureDescriptor":
        """Hand this descriptor to ``new_owner``, signed by the owner.

        ``owner_keypair`` must belong to the current owner — this is the
        API-level embodiment of "only the owner can transfer".  Terminal
        kinds must target the creator, and nothing may follow them.
        """
        if owner_keypair.public != self.current_owner:
            raise DescriptorError(
                f"{owner_keypair.public.hex()} is not the current owner "
                f"({self.current_owner.hex()})"
            )
        if self.is_spent:
            raise DescriptorError("descriptor already redeemed")
        if kind in TERMINAL_KINDS and new_owner != self.creator:
            raise DescriptorError("redemption hops must target the creator")
        new_digest = _extend_digest(self.chain_digest(), new_owner, kind)
        signature = sign(owner_keypair, new_digest)
        hop = OwnershipHop(owner=new_owner, kind=kind, signature=signature)
        child = SecureDescriptor(
            creator=self.creator,
            address=self.address,
            timestamp=self.timestamp,
            hops=self.hops + (hop,),
        )
        object.__setattr__(child, "_chain_digest", new_digest)
        # The new hop was signed here and now with the genuine owner
        # key, so a child of a verified parent is verified by
        # construction — propagate the memo instead of re-running the
        # whole chain of HMACs at the receiver.
        verified_by = self.__dict__.get("_verified_by")
        if verified_by is not None:
            object.__setattr__(child, "_verified_by", verified_by)
        return child

    def redeem(
        self,
        owner_keypair: KeyPair,
        non_swappable: bool = False,
    ) -> "SecureDescriptor":
        """Spend this descriptor for a gossip exchange with its creator."""
        kind = (
            TransferKind.NONSWAP_REDEEM if non_swappable else TransferKind.REDEEM
        )
        return self.transfer(owner_keypair, self.creator, kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = "->".join(pk.hex(6) for pk in self.owners())
        return f"SecureDescriptor({path}@{self.timestamp:g})"


def _extend_digest(
    digest: bytes, owner: PublicKey, kind: TransferKind
) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(digest)
    hasher.update(owner.digest)
    hasher.update(kind.value.encode("ascii"))
    return hasher.digest()


def mint(
    keypair: KeyPair, address: NetworkAddress, timestamp: float
) -> SecureDescriptor:
    """Create a brand-new descriptor of the key pair's node."""
    return SecureDescriptor(
        creator=keypair.public, address=address, timestamp=timestamp, hops=()
    )


# ----------------------------------------------------------------------
# chain verification (memoised per registry)
# ----------------------------------------------------------------------


def verify_descriptor(descriptor: SecureDescriptor, registry) -> bool:
    """Check every hop signature and the structural chain rules.

    Structural rules: terminal hops target the creator and appear only
    in final position.  Verification is memoised on the descriptor (per
    registry) because descriptors are immutable and shared: in a large
    simulation the same descriptor object is observed by many nodes,
    and re-running the HMACs would dominate the run time without
    changing any outcome.
    """
    if descriptor.__dict__.get("_verified_by") is registry:
        return True

    digest = descriptor.base_digest()
    signer = descriptor.creator
    for index, hop in enumerate(descriptor.hops):
        if hop.kind in TERMINAL_KINDS:
            if index != len(descriptor.hops) - 1:
                return False
            if hop.owner != descriptor.creator:
                return False
        digest = _extend_digest(digest, hop.owner, hop.kind)
        if hop.signature.signer != signer:
            return False
        if not verify(registry, hop.signature, digest):
            return False
        signer = hop.owner

    object.__setattr__(descriptor, "_verified_by", registry)
    return True


def require_valid(descriptor: SecureDescriptor, registry) -> None:
    """Raise :class:`DescriptorError` unless the descriptor verifies."""
    if not verify_descriptor(descriptor, registry):
        raise DescriptorError(f"invalid ownership chain on {descriptor!r}")
