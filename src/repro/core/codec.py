"""Whole-message binary codec for the gossip dialogue.

:mod:`repro.core.wire` serialises the two primitive records (descriptors
and proofs); this module frames complete dialogue messages so a whole
SecureCyclon conversation can be moved as bytes.  The simulator itself
passes Python objects between nodes (channels are in-process), so the
codec exists for three consumers:

* the network-cost experiment, which reports *measured* (not budgeted)
  per-message sizes;
* round-trip property tests, which fuzz the framing;
* anyone lifting this library onto a real transport.

Framing: one type byte, then the message's fields in a fixed order,
with ``u16`` counts for sequences and ``u32`` length prefixes for every
variable-size record.  Strings are UTF-8 with a ``u16`` length.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.descriptor import SecureDescriptor
from repro.core.proofs import ViolationProof
from repro.core.wire import (
    decode_descriptor,
    decode_proof,
    encode_descriptor,
    encode_proof,
)
from repro.errors import DescriptorError

_TYPE_CODES = {
    GossipOpen: 1,
    GossipAccept: 2,
    GossipReject: 3,
    TransferMessage: 4,
    TransferReply: 5,
    BulkSwapMessage: 6,
    BulkSwapReply: 7,
    ProofFlood: 8,
}


class _Writer:
    """Accumulates length-prefixed records."""

    def __init__(self) -> None:
        self.parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(struct.pack(">B", value))

    def u16(self, value: int) -> None:
        self.parts.append(struct.pack(">H", value))

    def u32(self, value: int) -> None:
        self.parts.append(struct.pack(">I", value))

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self.parts.append(data)

    def string(self, text: str) -> None:
        raw = text.encode("utf-8")
        self.u16(len(raw))
        self.parts.append(raw)

    def descriptor(self, descriptor: SecureDescriptor) -> None:
        self.blob(encode_descriptor(descriptor))

    def descriptors(self, items: Tuple[SecureDescriptor, ...]) -> None:
        self.u16(len(items))
        for item in items:
            self.descriptor(item)

    def proofs(self, items: Tuple[ViolationProof, ...]) -> None:
        self.u16(len(items))
        for item in items:
            self.blob(encode_proof(item))

    def bytes(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    """Mirrors :class:`_Writer`."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def u8(self) -> int:
        (value,) = struct.unpack_from(">B", self.data, self.offset)
        self.offset += 1
        return value

    def u16(self) -> int:
        (value,) = struct.unpack_from(">H", self.data, self.offset)
        self.offset += 2
        return value

    def u32(self) -> int:
        (value,) = struct.unpack_from(">I", self.data, self.offset)
        self.offset += 4
        return value

    def blob(self) -> bytes:
        size = self.u32()
        raw = self.data[self.offset : self.offset + size]
        if len(raw) != size:
            raise DescriptorError("truncated record")
        self.offset += size
        return raw

    def string(self) -> str:
        size = self.u16()
        raw = self.data[self.offset : self.offset + size]
        if len(raw) != size:
            raise DescriptorError("truncated string")
        self.offset += size
        return raw.decode("utf-8")

    def descriptor(self) -> SecureDescriptor:
        return decode_descriptor(self.blob())

    def descriptors(self) -> Tuple[SecureDescriptor, ...]:
        return tuple(self.descriptor() for _ in range(self.u16()))

    def proofs(self) -> Tuple[ViolationProof, ...]:
        return tuple(decode_proof(self.blob()) for _ in range(self.u16()))

    def done(self) -> None:
        if self.offset != len(self.data):
            raise DescriptorError("trailing bytes after message")


def encode_message(message: Any) -> bytes:
    """Serialise any dialogue message to bytes."""
    code = _TYPE_CODES.get(type(message))
    if code is None:
        raise DescriptorError(
            f"not a dialogue message: {type(message).__name__}"
        )
    writer = _Writer()
    writer.u8(code)
    if isinstance(message, GossipOpen):
        writer.descriptor(message.redemption)
        writer.u8(1 if message.non_swappable else 0)
        writer.descriptors(message.samples)
        writer.proofs(message.proofs)
    elif isinstance(message, GossipAccept):
        writer.descriptors(message.samples)
        writer.proofs(message.proofs)
    elif isinstance(message, GossipReject):
        writer.string(message.reason)
        writer.proofs(message.proofs)
    elif isinstance(message, TransferMessage):
        writer.descriptor(message.descriptor)
        writer.u16(message.round_index)
    elif isinstance(message, TransferReply):
        writer.u8(1 if message.descriptor is not None else 0)
        if message.descriptor is not None:
            writer.descriptor(message.descriptor)
    elif isinstance(message, (BulkSwapMessage, BulkSwapReply)):
        writer.descriptors(message.descriptors)
    else:  # ProofFlood
        writer.blob(encode_proof(message.proof))
    return writer.bytes()


def decode_message(data: bytes) -> Any:
    """Inverse of :func:`encode_message`."""
    try:
        reader = _Reader(data)
        code = reader.u8()
        if code == 1:
            message: Any = GossipOpen(
                redemption=reader.descriptor(),
                non_swappable=bool(reader.u8()),
                samples=reader.descriptors(),
                proofs=reader.proofs(),
            )
        elif code == 2:
            message = GossipAccept(
                samples=reader.descriptors(), proofs=reader.proofs()
            )
        elif code == 3:
            message = GossipReject(
                reason=reader.string(), proofs=reader.proofs()
            )
        elif code == 4:
            message = TransferMessage(
                descriptor=reader.descriptor(), round_index=reader.u16()
            )
        elif code == 5:
            present = reader.u8()
            message = TransferReply(
                descriptor=reader.descriptor() if present else None
            )
        elif code == 6:
            message = BulkSwapMessage(descriptors=reader.descriptors())
        elif code == 7:
            message = BulkSwapReply(descriptors=reader.descriptors())
        elif code == 8:
            message = ProofFlood(proof=decode_proof(reader.blob()))
        else:
            raise DescriptorError(f"unknown message type code {code}")
        reader.done()
        return message
    except (struct.error, ValueError, IndexError) as exc:
        raise DescriptorError(f"malformed message bytes: {exc}") from exc


def encoded_message_size(message: Any) -> int:
    """Measured wire size in bytes of the framed message."""
    return len(encode_message(message))
