"""Whole-message binary codec for the gossip dialogue.

:mod:`repro.core.wire` serialises the two primitive records (descriptors
and proofs); this module frames complete dialogue messages so a whole
SecureCyclon conversation can be moved as bytes.  The codec serves:

* the :class:`~repro.sim.transport.WireTransport`, which round-trips
  every dialogue leg and push through these frames so receivers decode
  fresh objects from real bytes (``transport="wire"``);
* the network-cost experiment, which reports *measured* (not budgeted)
  per-message sizes;
* round-trip property tests, which fuzz the framing;
* anyone lifting this library onto a real transport.

Framing: one type byte, then the message's fields in a fixed order,
with ``u16`` counts for sequences and ``u32`` length prefixes for every
variable-size record.  Strings are UTF-8 with a ``u16`` length.

Every malformed input — truncated frames, trailing garbage, unknown
type bytes, corrupt embedded records — raises :class:`~repro.errors.
CodecError`; decoders never leak ``struct.error``.

The eight SecureCyclon dialogue messages own type bytes 1–8.  Other
protocol packages register their own messages through
:func:`register_message_codec` (see :mod:`repro.cyclon.codec` for the
legacy-Cyclon shuffle messages), so the wire transport can frame every
conversation the simulator carries without this module importing the
protocol layers above it.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.exchange import (
    BulkSwapMessage,
    BulkSwapReply,
    GossipAccept,
    GossipOpen,
    GossipReject,
    ProofFlood,
    TransferMessage,
    TransferReply,
)
from repro.core.descriptor import SecureDescriptor
from repro.core.proofs import ViolationProof
from repro.core.wire import (
    decode_descriptor,
    decode_proof,
    encode_descriptor,
    encode_proof,
)
from repro.errors import CodecError, DescriptorError, FrameOversizeError

#: Default ceiling on a decodable frame, checked before any parsing.
#: Generously above every legitimate frame (the largest honest message
#: — a bulk swap of max-hop chains — measures a few hundred KiB below
#: this at paper-scale view lengths) while bounding what one frame can
#: make a receiver scan: an attacker who inflates frames past the
#: ceiling is rejected at the cost of a single length check.
MAX_FRAME_BYTES = 1 << 20

_TYPE_CODES = {
    GossipOpen: 1,
    GossipAccept: 2,
    GossipReject: 3,
    TransferMessage: 4,
    TransferReply: 5,
    BulkSwapMessage: 6,
    BulkSwapReply: 7,
    ProofFlood: 8,
}

#: Extension message types registered by other protocol packages:
#: ``{type: (code, encode)}`` and ``{code: decode}``.  Codes 1–8 are
#: reserved for the SecureCyclon dialogue above.
_EXTENSION_ENCODERS: Dict[type, Tuple[int, Callable[["MessageWriter", Any], None]]] = {}
_EXTENSION_DECODERS: Dict[int, Callable[["MessageReader"], Any]] = {}

# Precompiled Struct objects for every primitive field width.  A
# module-level Struct skips the format-string parse and cache probe
# that ``struct.pack``/``unpack_from`` pay on every call — these
# primitives run once per field of every frame, so the constant factor
# is the whole cost.  Shared by the legacy reader/writer below and the
# batch fast path (:mod:`repro.core.codec_batch`).
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def register_message_codec(
    message_type: type,
    code: int,
    encode: Callable[["MessageWriter", Any], None],
    decode: Callable[["MessageReader"], Any],
) -> None:
    """Register an extension dialogue message with the framing layer.

    ``encode(writer, message)`` writes the message's fields (the type
    byte is framed by the codec); ``decode(reader)`` mirrors it and
    returns the rebuilt message.  ``code`` must be 9–255 and unique.
    Re-registering the same type with the same code is a no-op, so
    module-import-time registration stays idempotent under reloads.
    """
    if not 9 <= code <= 255:
        raise CodecError(
            f"extension type codes must be 9-255 (1-8 are reserved); "
            f"got {code} for {message_type.__name__}"
        )
    existing = _EXTENSION_ENCODERS.get(message_type)
    if existing is not None and existing[0] == code:
        return
    if existing is not None or code in _EXTENSION_DECODERS:
        raise CodecError(
            f"conflicting codec registration for {message_type.__name__} "
            f"(code {code})"
        )
    _EXTENSION_ENCODERS[message_type] = (code, encode)
    _EXTENSION_DECODERS[code] = decode


class MessageWriter:
    """Accumulates length-prefixed records.

    Extension codecs (see :func:`register_message_codec`) write through
    these primitives only — the storage behind them is not part of the
    contract.
    """

    def __init__(self) -> None:
        self.parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(_U8.pack(value))

    def u16(self, value: int) -> None:
        self.parts.append(_U16.pack(value))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def i64(self, value: int) -> None:
        self.parts.append(_I64.pack(value))

    def f64(self, value: float) -> None:
        """An IEEE-754 double, big-endian — lossless for every float."""
        self.parts.append(_F64.pack(value))

    def raw(self, data: bytes) -> None:
        """Append ``data`` verbatim (fixed-width fields; no prefix)."""
        self.parts.append(data)

    def blob(self, data: bytes) -> None:
        self.u32(len(data))
        self.parts.append(data)

    def string(self, text: str) -> None:
        raw = text.encode("utf-8")
        self.u16(len(raw))
        self.parts.append(raw)

    def descriptor(self, descriptor: SecureDescriptor) -> None:
        self.blob(encode_descriptor(descriptor))

    def descriptors(self, items: Tuple[SecureDescriptor, ...]) -> None:
        self.u16(len(items))
        for item in items:
            self.descriptor(item)

    def proofs(self, items: Tuple[ViolationProof, ...]) -> None:
        self.u16(len(items))
        for item in items:
            self.blob(encode_proof(item))

    def bytes(self) -> bytes:
        return b"".join(self.parts)


class MessageReader:
    """Mirrors :class:`MessageWriter`.

    Every primitive raises a typed :class:`~repro.errors.CodecError`
    when the frame runs out of bytes: malformed input is reported by
    the reader itself, so the dispatch site in :func:`decode_message`
    never has to catch ``struct.error`` (which would also mask decoder
    bugs as "malformed input").  The try/except costs nothing on the
    happy path.
    """

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def u8(self) -> int:
        try:
            (value,) = _U8.unpack_from(self.data, self.offset)
        except struct.error:
            raise CodecError("truncated u8 field") from None
        self.offset += 1
        return value

    def u16(self) -> int:
        try:
            (value,) = _U16.unpack_from(self.data, self.offset)
        except struct.error:
            raise CodecError("truncated u16 field") from None
        self.offset += 2
        return value

    def u32(self) -> int:
        try:
            (value,) = _U32.unpack_from(self.data, self.offset)
        except struct.error:
            raise CodecError("truncated u32 field") from None
        self.offset += 4
        return value

    def i64(self) -> int:
        try:
            (value,) = _I64.unpack_from(self.data, self.offset)
        except struct.error:
            raise CodecError("truncated i64 field") from None
        self.offset += 8
        return value

    def f64(self) -> float:
        try:
            (value,) = _F64.unpack_from(self.data, self.offset)
        except struct.error:
            raise CodecError("truncated f64 field") from None
        self.offset += 8
        return value

    def fixed(self, size: int) -> bytes:
        """Read exactly ``size`` bytes (a fixed-width field)."""
        raw = self.data[self.offset : self.offset + size]
        if len(raw) != size:
            raise CodecError("truncated fixed-width field")
        self.offset += size
        return raw

    def blob(self) -> bytes:
        # The declared length is untrusted: check it against the bytes
        # actually remaining *before* slicing, so a frame declaring a
        # 4 GiB record is rejected by arithmetic, not by materialising
        # anything proportional to the claim.
        size = self.u32()
        if size > len(self.data) - self.offset:
            raise CodecError("truncated record")
        raw = self.data[self.offset : self.offset + size]
        self.offset += size
        return raw

    def string(self) -> str:
        size = self.u16()
        if size > len(self.data) - self.offset:
            raise CodecError("truncated string")
        raw = self.data[self.offset : self.offset + size]
        self.offset += size
        return raw.decode("utf-8")

    def descriptor(self) -> SecureDescriptor:
        return decode_descriptor(self.blob())

    def descriptors(self) -> Tuple[SecureDescriptor, ...]:
        return tuple(self.descriptor() for _ in range(self.u16()))

    def proofs(self) -> Tuple[ViolationProof, ...]:
        return tuple(decode_proof(self.blob()) for _ in range(self.u16()))

    def done(self) -> None:
        if self.offset != len(self.data):
            raise CodecError("trailing bytes after message")


def encode_message(message: Any) -> bytes:
    """Serialise any dialogue message to bytes.

    Raises :class:`~repro.errors.CodecError` for message types neither
    built in nor registered via :func:`register_message_codec`.
    """
    code = _TYPE_CODES.get(type(message))
    writer = MessageWriter()
    if code is None:
        extension = _EXTENSION_ENCODERS.get(type(message))
        if extension is None:
            raise CodecError(
                f"not a dialogue message: {type(message).__name__} "
                "(register_message_codec adds new message types)"
            )
        code, encode = extension
        writer.u8(code)
        encode(writer, message)
        return writer.bytes()
    writer.u8(code)
    if isinstance(message, GossipOpen):
        writer.descriptor(message.redemption)
        writer.u8(1 if message.non_swappable else 0)
        writer.descriptors(message.samples)
        writer.proofs(message.proofs)
    elif isinstance(message, GossipAccept):
        writer.descriptors(message.samples)
        writer.proofs(message.proofs)
    elif isinstance(message, GossipReject):
        writer.string(message.reason)
        writer.proofs(message.proofs)
    elif isinstance(message, TransferMessage):
        writer.descriptor(message.descriptor)
        writer.u16(message.round_index)
    elif isinstance(message, TransferReply):
        writer.u8(1 if message.descriptor is not None else 0)
        if message.descriptor is not None:
            writer.descriptor(message.descriptor)
    elif isinstance(message, (BulkSwapMessage, BulkSwapReply)):
        writer.descriptors(message.descriptors)
    else:  # ProofFlood
        writer.blob(encode_proof(message.proof))
    return writer.bytes()


def decode_message(
    data: bytes, max_frame_bytes: Optional[int] = MAX_FRAME_BYTES
) -> Any:
    """Inverse of :func:`encode_message`.

    Raises :class:`~repro.errors.CodecError` on any malformed input:
    truncated frames, trailing bytes, unknown type codes, and corrupt
    embedded descriptor/proof records.  Frames longer than
    ``max_frame_bytes`` raise :class:`~repro.errors.FrameOversizeError`
    (a :class:`CodecError` subclass) before any field is parsed —
    bounded allocation comes first, declared counts and lengths are
    only ever read from frames already inside the ceiling.  Pass
    ``None`` to disable the ceiling.
    """
    if max_frame_bytes is not None and len(data) > max_frame_bytes:
        raise FrameOversizeError(
            f"frame of {len(data)} bytes exceeds the "
            f"{max_frame_bytes}-byte ceiling"
        )
    try:
        reader = MessageReader(data)
        code = reader.u8()
        if code == 1:
            message: Any = GossipOpen(
                redemption=reader.descriptor(),
                non_swappable=bool(reader.u8()),
                samples=reader.descriptors(),
                proofs=reader.proofs(),
            )
        elif code == 2:
            message = GossipAccept(
                samples=reader.descriptors(), proofs=reader.proofs()
            )
        elif code == 3:
            message = GossipReject(
                reason=reader.string(), proofs=reader.proofs()
            )
        elif code == 4:
            message = TransferMessage(
                descriptor=reader.descriptor(), round_index=reader.u16()
            )
        elif code == 5:
            present = reader.u8()
            message = TransferReply(
                descriptor=reader.descriptor() if present else None
            )
        elif code == 6:
            message = BulkSwapMessage(descriptors=reader.descriptors())
        elif code == 7:
            message = BulkSwapReply(descriptors=reader.descriptors())
        elif code == 8:
            message = ProofFlood(proof=decode_proof(reader.blob()))
        else:
            decode = _EXTENSION_DECODERS.get(code)
            if decode is None:
                raise CodecError(f"unknown message type code {code}")
            message = decode(reader)
        reader.done()
        return message
    except CodecError:
        raise
    except (ValueError, DescriptorError) as exc:
        # Deliberately narrow: truncation is raised as CodecError by the
        # reader primitives themselves and the registry lookup raises
        # explicitly above, so the only things legitimately left are
        # DescriptorError (corrupt embedded records surfaced by
        # decode_descriptor/decode_proof) and ValueError (invalid UTF-8
        # in string fields, out-of-range record fields).  A KeyError or
        # IndexError escaping a decoder is a decoder *bug* and must
        # surface as one, not masquerade as malformed input.
        raise CodecError(f"malformed message bytes: {exc}") from exc


def encoded_message_size(message: Any) -> int:
    """Measured wire size in bytes of the framed message."""
    return len(encode_message(message))
