"""Wire messages of the SecureCyclon gossip dialogue.

A gossip exchange is a short dialogue:

1. ``GossipOpen`` — the initiator presents the *redemption* of a
   descriptor created by the partner (its permission certificate,
   paper §IV-A), plus its samples (view copies and redemption cache)
   and every violation proof it knows (§IV-C catch-up).
2. ``GossipAccept`` / ``GossipReject`` — the partner's verdict, with
   its own samples and proofs on acceptance.
3. Descriptor ownership then moves either one-per-round-trip
   (``TransferMessage``/``TransferReply``, the §V-B tit-for-tat), or in
   a single ``BulkSwapMessage``/``BulkSwapReply`` pair when tit-for-tat
   is disabled (the Fig 6 baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.descriptor import SecureDescriptor
from repro.core.proofs import ViolationProof


@dataclass(frozen=True, slots=True)
class GossipOpen:
    """Initiator→partner: redemption token, samples, known proofs."""

    redemption: SecureDescriptor
    non_swappable: bool = False
    samples: Tuple[SecureDescriptor, ...] = ()
    proofs: Tuple[ViolationProof, ...] = ()


@dataclass(frozen=True, slots=True)
class GossipAccept:
    """Partner→initiator: exchange granted; partner's samples and proofs."""

    samples: Tuple[SecureDescriptor, ...] = ()
    proofs: Tuple[ViolationProof, ...] = ()


@dataclass(frozen=True, slots=True)
class GossipReject:
    """Partner→initiator: exchange refused.

    ``proofs`` lets the partner attach evidence, e.g. when the refusal
    is because the initiator was just proven malicious.
    """

    reason: str
    proofs: Tuple[ViolationProof, ...] = ()


@dataclass(frozen=True, slots=True)
class TransferMessage:
    """Initiator→partner: one descriptor whose ownership was transferred."""

    descriptor: SecureDescriptor
    round_index: int


@dataclass(frozen=True, slots=True)
class TransferReply:
    """Partner→initiator: the counter-transfer for this round (or None)."""

    descriptor: Optional[SecureDescriptor] = None


@dataclass(frozen=True, slots=True)
class BulkSwapMessage:
    """Initiator→partner: all swapped descriptors at once (no tit-for-tat)."""

    descriptors: Tuple[SecureDescriptor, ...] = ()


@dataclass(frozen=True, slots=True)
class BulkSwapReply:
    """Partner→initiator: all counter-swapped descriptors at once."""

    descriptors: Tuple[SecureDescriptor, ...] = ()


@dataclass(frozen=True, slots=True)
class ProofFlood:
    """One-way flooded violation proof (paper §IV-C)."""

    proof: ViolationProof
