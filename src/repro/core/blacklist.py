"""The blacklist: validated violators and the proofs against them.

Paper §IV-C: upon receiving and locally validating a proof of
violation, correct nodes blacklist the corresponding malicious node,
drop every descriptor linking to it, and stop accepting its gossip.
The blacklist also remembers the proof itself so it can be forwarded to
newly joined nodes during gossip.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.proofs import ViolationProof
from repro.crypto.keys import PublicKey


class Blacklist:
    """Set of proven violators, keyed by public key.

    ``by_culprit`` is the underlying proof map, exposed as a public
    attribute: hot protocol paths test membership on every received
    descriptor, and a direct ``in`` on the (never-replaced) dict avoids
    a method call per check.  Treat it as read-only outside this class.
    """

    def __init__(self) -> None:
        self.by_culprit: Dict[PublicKey, ViolationProof] = {}
        self._proofs_tuple: tuple = ()

    def __len__(self) -> int:
        return len(self.by_culprit)

    def __contains__(self, public: PublicKey) -> bool:
        return public in self.by_culprit

    def is_blacklisted(self, public: PublicKey) -> bool:
        return public in self.by_culprit

    def add(self, proof: ViolationProof) -> bool:
        """Record ``proof``; True iff its culprit is newly blacklisted.

        The "already discovered" test is the paper's guard against
        re-flooding known proofs (§IV-C DoS discussion).
        """
        if proof.culprit in self.by_culprit:
            return False
        self.by_culprit[proof.culprit] = proof
        self._proofs_tuple = self._proofs_tuple + (proof,)
        return True

    def proof_for(self, public: PublicKey) -> Optional[ViolationProof]:
        return self.by_culprit.get(public)

    def proofs(self) -> List[ViolationProof]:
        """All retained proofs (piggybacked on gossip for catch-up)."""
        return list(self._proofs_tuple)

    def proofs_tuple(self) -> tuple:
        """Same as :meth:`proofs` but without a copy (hot path)."""
        return self._proofs_tuple

    def members(self) -> Iterable[PublicKey]:
        return self.by_culprit.keys()
