"""The SecureCyclon partial view: owned descriptors plus repair state.

Unlike the legacy Cyclon view, entries here are descriptors the node
*owns* (it is the chain tail), and each may be flagged non-swappable
(paper §V-A): a retained copy of a descriptor whose ownership was
transferred away, usable only to redeem — never to swap.

Invariants (checked in tests):

* at most ``capacity`` entries;
* at most one entry per descriptor *identity* (creator, timestamp) —
  unlike legacy Cyclon, two links to the same creator may coexist,
  because each descriptor is a distinct conserved token and silently
  discarding one would leak view slots (and the paper's §II-B
  equilibrium argument counts descriptors, not distinct creators);
* never an entry created by the view's owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.core.descriptor import DescriptorId, SecureDescriptor
from repro.crypto.keys import PublicKey


@dataclass(frozen=True)
class ViewEntry:
    """One view slot: an owned descriptor and its swap eligibility."""

    descriptor: SecureDescriptor
    non_swappable: bool = False

    @property
    def creator(self) -> PublicKey:
        return self.descriptor.creator

    @property
    def timestamp(self) -> float:
        return self.descriptor.timestamp


class SecureView:
    """Bounded view of owned descriptors held by one SecureCyclon node."""

    def __init__(self, owner_id: PublicKey, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be >= 1")
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries: List[ViewEntry] = []

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def descriptors(self) -> List[SecureDescriptor]:
        return [entry.descriptor for entry in self._entries]

    def neighbor_ids(self) -> List[PublicKey]:
        return [entry.creator for entry in self._entries]

    def contains_creator(self, creator: PublicKey) -> bool:
        return any(entry.creator == creator for entry in self._entries)

    def entry_for_creator(self, creator: PublicKey) -> Optional[ViewEntry]:
        for entry in self._entries:
            if entry.creator == creator:
                return entry
        return None

    def non_swappable_count(self) -> int:
        return sum(1 for entry in self._entries if entry.non_swappable)

    def swappable_count(self) -> int:
        return len(self._entries) - self.non_swappable_count()

    def oldest(self) -> Optional[ViewEntry]:
        """The entry with the earliest birth timestamp."""
        if not self._entries:
            return None
        return min(self._entries, key=lambda entry: entry.timestamp)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(
        self, descriptor: SecureDescriptor, non_swappable: bool = False
    ) -> bool:
        """Insert respecting the invariants; True if the view changed.

        A duplicate *identity* keeps the existing entry unless the new
        copy is swappable and the old one is not (a swappable link is
        strictly more useful).  Duplicate creators with different
        timestamps are distinct tokens and may coexist.
        """
        if descriptor.creator == self.owner_id:
            return False
        candidate = ViewEntry(descriptor=descriptor, non_swappable=non_swappable)
        identity = descriptor.identity
        for index, entry in enumerate(self._entries):
            if entry.descriptor.identity != identity:
                continue
            if entry.non_swappable and not candidate.non_swappable:
                self._entries[index] = candidate
                return True
            return False
        if len(self._entries) >= self.capacity:
            return False
        self._entries.append(candidate)
        return True

    def remove_entry(self, entry: ViewEntry) -> bool:
        """Remove one specific entry; True if it was present."""
        try:
            self._entries.remove(entry)
            return True
        except ValueError:
            return False

    def remove_identity(self, identity: DescriptorId) -> Optional[ViewEntry]:
        for index, entry in enumerate(self._entries):
            if entry.descriptor.identity == identity:
                return self._entries.pop(index)
        return None

    def pop_random_swappable(
        self, count: int, rng, exclude_creator: Optional[PublicKey] = None
    ) -> List[ViewEntry]:
        """Remove and return up to ``count`` random swappable entries.

        ``exclude_creator`` skips descriptors created by the exchange
        counterparty: sending a node its own descriptor would just
        retire the token (the receiver holds no self-links), wasting a
        swap slot, so honest peers pick around it.
        """
        swappable_indices = [
            index
            for index, entry in enumerate(self._entries)
            if not entry.non_swappable
            and (exclude_creator is None or entry.creator != exclude_creator)
        ]
        count = min(count, len(swappable_indices))
        if count == 0:
            return []
        chosen = rng.sample(swappable_indices, count)
        picked = [self._entries[index] for index in chosen]
        for index in sorted(chosen, reverse=True):
            del self._entries[index]
        return picked

    def pop_one_random_swappable(
        self, rng, exclude_creator: Optional[PublicKey] = None
    ) -> Optional[ViewEntry]:
        entries = self.pop_random_swappable(
            1, rng, exclude_creator=exclude_creator
        )
        return entries[0] if entries else None

    def purge_creator(self, creator: PublicKey) -> int:
        """Drop every entry created by ``creator`` (it was blacklisted)."""
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries if entry.creator != creator
        ]
        return before - len(self._entries)

    def purge_if(self, predicate) -> int:
        """Drop entries matching ``predicate``; returns how many."""
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries if not predicate(entry)
        ]
        return before - len(self._entries)
