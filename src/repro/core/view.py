"""The SecureCyclon partial view: owned descriptors plus repair state.

Unlike the legacy Cyclon view, entries here are descriptors the node
*owns* (it is the chain tail), and each may be flagged non-swappable
(paper §V-A): a retained copy of a descriptor whose ownership was
transferred away, usable only to redeem — never to swap.

Invariants (checked in tests):

* at most ``capacity`` entries;
* at most one entry per descriptor *identity* (creator, timestamp) —
  unlike legacy Cyclon, two links to the same creator may coexist,
  because each descriptor is a distinct conserved token and silently
  discarding one would leak view slots (and the paper's §II-B
  equilibrium argument counts descriptors, not distinct creators);
* never an entry created by the view's owner.

``_entries`` (a plain list of :class:`ViewEntry`, in insertion order)
remains the source of truth — the audit tests plant invariant
violations by mutating it directly.  On top of it the view maintains
O(1) indexes: an identity-keyed dict for membership and removal, a
per-creator entry counter for ``contains_creator``/``purge_creator``
fast paths, a running non-swappable count, and a cached oldest entry.
Every indexed operation first checks that the list length still
matches the indexed length and reindexes if an external mutation is
detected.  Observable behaviour (entry order, RNG consumption,
tie-breaking) is identical to the original linear-scan implementation;
``tests/properties/test_indexed_view_equivalence.py`` checks the
equivalence under randomised operation sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.descriptor import DescriptorId, SecureDescriptor
from repro.crypto.keys import PublicKey


@dataclass(frozen=True, slots=True)
class ViewEntry:
    """One view slot: an owned descriptor and its swap eligibility.

    ``creator`` and ``timestamp`` mirror the descriptor's fields as
    plain (slotted) attributes, not properties: view filtering touches
    them for every entry on every exchange, and attribute reads keep
    that scan off the simulation's critical path.
    """

    descriptor: SecureDescriptor
    non_swappable: bool = False
    creator: PublicKey = field(init=False, repr=False, compare=False)
    timestamp: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "creator", self.descriptor.creator)
        object.__setattr__(self, "timestamp", self.descriptor.timestamp)


def _new_entry(descriptor: SecureDescriptor, non_swappable: bool) -> ViewEntry:
    """Assemble a ViewEntry without the dataclass constructor.

    Entry creation sits on the per-swap hot path; four direct slot
    stores beat ``__init__`` + ``__post_init__`` by about a
    microsecond each.
    """
    entry = object.__new__(ViewEntry)
    fill = object.__setattr__
    fill(entry, "descriptor", descriptor)
    fill(entry, "non_swappable", non_swappable)
    fill(entry, "creator", descriptor.creator)
    fill(entry, "timestamp", descriptor.timestamp)
    return entry


class SecureView:
    """Bounded view of owned descriptors held by one SecureCyclon node."""

    def __init__(self, owner_id: PublicKey, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be >= 1")
        self.owner_id = owner_id
        self.capacity = capacity
        self._entries: List[ViewEntry] = []
        self._by_identity: Dict[DescriptorId, ViewEntry] = {}
        self._creator_count: Dict[PublicKey, int] = {}
        self._nonswap_count = 0
        # Cached oldest entry; None means "unknown, recompute".
        self._oldest_entry: Optional[ViewEntry] = None
        # Length of _entries when the indexes were last in sync; a
        # mismatch means someone mutated the list behind our back.
        self._synced_len = 0

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------

    def _sync(self) -> None:
        if len(self._entries) != self._synced_len:
            self._reindex()

    def _reindex(self) -> None:
        """Rebuild every index from the entry list (source of truth)."""
        by_identity: Dict[DescriptorId, ViewEntry] = {}
        creator_count: Dict[PublicKey, int] = {}
        nonswap = 0
        for entry in self._entries:
            by_identity[entry.descriptor.identity] = entry
            creator = entry.creator
            creator_count[creator] = creator_count.get(creator, 0) + 1
            if entry.non_swappable:
                nonswap += 1
        self._by_identity = by_identity
        self._creator_count = creator_count
        self._nonswap_count = nonswap
        self._oldest_entry = None
        self._synced_len = len(self._entries)

    def _index_add(self, entry: ViewEntry) -> None:
        self._by_identity[entry.descriptor.identity] = entry
        creator = entry.creator
        count = self._creator_count
        count[creator] = count.get(creator, 0) + 1
        if entry.non_swappable:
            self._nonswap_count += 1
        oldest = self._oldest_entry
        if oldest is not None and entry.timestamp < oldest.timestamp:
            self._oldest_entry = entry
        self._synced_len += 1

    def _index_drop(self, entry: ViewEntry) -> None:
        self._by_identity.pop(entry.descriptor.identity, None)
        creator = entry.creator
        count = self._creator_count
        remaining = count.get(creator, 0) - 1
        if remaining > 0:
            count[creator] = remaining
        else:
            count.pop(creator, None)
        if entry.non_swappable:
            self._nonswap_count -= 1
        if self._oldest_entry is entry:
            self._oldest_entry = None
        self._synced_len -= 1

    def _list_remove(self, entry: ViewEntry) -> None:
        """Remove ``entry`` from the list by object identity."""
        entries = self._entries
        for index, candidate in enumerate(entries):
            if candidate is entry:
                del entries[index]
                return
        entries.remove(entry)  # pragma: no cover - identity always hits

    def _find_oldest(self) -> Optional[ViewEntry]:
        """First entry (in view order) with the earliest timestamp.

        Tie-break rule, pinned deterministically: among equal
        timestamps the entry at the earliest view position wins,
        exactly as the original ``min``-based scan behaved.
        """
        entries = self._entries
        if not entries:
            return None
        best = entries[0]
        best_ts = best.timestamp
        for entry in entries:
            if entry.timestamp < best_ts:
                best = entry
                best_ts = entry.timestamp
        return best

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ViewEntry]:
        return iter(self._entries)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self._entries)

    def descriptors(self) -> List[SecureDescriptor]:
        return [entry.descriptor for entry in self._entries]

    def neighbor_ids(self) -> List[PublicKey]:
        return [entry.creator for entry in self._entries]

    def contains_creator(self, creator: PublicKey) -> bool:
        self._sync()
        return creator in self._creator_count

    def entry_for_creator(self, creator: PublicKey) -> Optional[ViewEntry]:
        self._sync()
        if creator not in self._creator_count:
            return None
        for entry in self._entries:
            if entry.creator == creator:
                return entry
        return None  # pragma: no cover - counter implies presence

    def non_swappable_count(self) -> int:
        self._sync()
        return self._nonswap_count

    def swappable_count(self) -> int:
        self._sync()
        return len(self._entries) - self._nonswap_count

    def oldest(self) -> Optional[ViewEntry]:
        """The entry with the earliest birth timestamp.

        Ties break to the earliest view position — see
        :meth:`_find_oldest` for why the rule is pinned.
        """
        self._sync()
        entry = self._oldest_entry
        if entry is None:
            entry = self._find_oldest()
            self._oldest_entry = entry
        return entry

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(
        self, descriptor: SecureDescriptor, non_swappable: bool = False
    ) -> bool:
        """Insert respecting the invariants; True if the view changed.

        A duplicate *identity* keeps the existing entry unless the new
        copy is swappable and the old one is not (a swappable link is
        strictly more useful).  Duplicate creators with different
        timestamps are distinct tokens and may coexist.
        """
        if descriptor.creator.digest == self.owner_id.digest:
            return False
        self._sync()
        identity = descriptor.identity
        existing = self._by_identity.get(identity)
        if existing is not None:
            if existing.non_swappable and not non_swappable:
                candidate = _new_entry(descriptor, False)
                entries = self._entries
                for index, entry in enumerate(entries):
                    if entry is existing:
                        entries[index] = candidate
                        break
                self._by_identity[identity] = candidate
                self._nonswap_count -= 1
                if self._oldest_entry is existing:
                    self._oldest_entry = candidate
                return True
            return False
        if len(self._entries) >= self.capacity:
            return False
        candidate = _new_entry(descriptor, non_swappable)
        self._entries.append(candidate)
        self._index_add(candidate)
        return True

    def remove_entry(self, entry: ViewEntry) -> bool:
        """Remove one specific entry; True if it was present."""
        self._sync()
        stored = self._by_identity.get(entry.descriptor.identity)
        if stored is None or (stored is not entry and stored != entry):
            return False
        self._list_remove(stored)
        self._index_drop(stored)
        return True

    def remove_identity(self, identity: DescriptorId) -> Optional[ViewEntry]:
        self._sync()
        stored = self._by_identity.get(identity)
        if stored is None:
            return None
        self._list_remove(stored)
        self._index_drop(stored)
        return stored

    def pop_random_swappable(
        self, count: int, rng, exclude_creator: Optional[PublicKey] = None
    ) -> List[ViewEntry]:
        """Remove and return up to ``count`` random swappable entries.

        ``exclude_creator`` skips descriptors created by the exchange
        counterparty: sending a node its own descriptor would just
        retire the token (the receiver holds no self-links), wasting a
        swap slot, so honest peers pick around it.
        """
        self._sync()
        entries = self._entries
        if self._nonswap_count == 0 and (
            exclude_creator is None
            or exclude_creator not in self._creator_count
        ):
            # Fast path: every entry qualifies, skip the per-entry scan.
            swappable_indices = list(range(len(entries)))
        elif exclude_creator is None:
            swappable_indices = [
                index
                for index, entry in enumerate(entries)
                if not entry.non_swappable
            ]
        else:
            # Key equality is digest equality; comparing the digests
            # directly keeps this per-entry scan at C speed.
            excluded = exclude_creator.digest
            swappable_indices = [
                index
                for index, entry in enumerate(entries)
                if not entry.non_swappable
                and entry.creator.digest != excluded
            ]
        count = min(count, len(swappable_indices))
        if count == 0:
            return []
        chosen = rng.sample(swappable_indices, count)
        picked = [entries[index] for index in chosen]
        for index in sorted(chosen, reverse=True):
            del entries[index]
        for entry in picked:
            self._index_drop(entry)
        return picked

    def pop_one_random_swappable(
        self, rng, exclude_creator: Optional[PublicKey] = None
    ) -> Optional[ViewEntry]:
        entries = self.pop_random_swappable(
            1, rng, exclude_creator=exclude_creator
        )
        return entries[0] if entries else None

    def purge_creator(self, creator: PublicKey) -> int:
        """Drop every entry created by ``creator`` (it was blacklisted)."""
        self._sync()
        if creator not in self._creator_count:
            return 0
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries if entry.creator != creator
        ]
        self._reindex()
        return before - len(self._entries)

    def purge_if(self, predicate) -> int:
        """Drop entries matching ``predicate``; returns how many."""
        self._sync()
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries if not predicate(entry)
        ]
        if len(self._entries) != before:
            self._reindex()
        return before - len(self._entries)
