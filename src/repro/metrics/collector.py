"""Ready-made probe bundles for :class:`~repro.sim.observers.SeriesObserver`."""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.metrics.links import (
    blacklisted_malicious_fraction,
    malicious_link_fraction,
    non_swappable_fraction,
    view_fill_fraction,
)


def standard_probes() -> Dict[str, Callable[[Any], float]]:
    """The probes used by the attack experiments.

    * ``malicious_links`` — Figs 3/5 y-axis (fraction, not percent);
    * ``non_swappable`` — Fig 6 y-axis;
    * ``view_fill`` — health check of view occupancy;
    * ``blacklist_progress`` — how much of the malicious population the
      average legitimate node has blacklisted.
    """
    return {
        "malicious_links": malicious_link_fraction,
        "non_swappable": non_swappable_fraction,
        "view_fill": view_fill_fraction,
        "blacklist_progress": blacklisted_malicious_fraction,
    }
