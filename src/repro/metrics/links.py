"""Link-composition metrics over legitimate nodes' views.

These produce the y-axes of Figs 3, 5 and 6: the percentage of links
pointing at malicious nodes, and the percentage of non-swappable links.
They work uniformly over Cyclon and SecureCyclon nodes by duck-typing
the view entries.
"""

from __future__ import annotations

from typing import Any, List


def view_targets(node: Any) -> List[Any]:
    """The IDs a node's view points at, protocol-agnostic.

    SecureCyclon views expose ``neighbor_ids`` over creators; Cyclon
    views expose it over descriptor node IDs.
    """
    return node.view.neighbor_ids()


def malicious_link_fraction(engine: Any) -> float:
    """Fraction of legitimate nodes' links that point at malicious nodes.

    This is the headline metric of the hub-attack experiments (Figs 3
    and 5): 1.0 means the attacker owns every link in every legitimate
    view.
    """
    malicious_ids = engine.malicious_ids
    total = 0
    to_malicious = 0
    for node in engine.legit_nodes():
        for target in view_targets(node):
            total += 1
            if target in malicious_ids:
                to_malicious += 1
    if total == 0:
        return 0.0
    return to_malicious / total


def non_swappable_fraction(engine: Any) -> float:
    """Fraction of legitimate view entries flagged non-swappable (Fig 6).

    Only meaningful for SecureCyclon overlays; Cyclon entries count as
    swappable.
    """
    total = 0
    non_swappable = 0
    for node in engine.legit_nodes():
        for entry in node.view:
            total += 1
            if getattr(entry, "non_swappable", False):
                non_swappable += 1
    if total == 0:
        return 0.0
    return non_swappable / total


def view_fill_fraction(engine: Any) -> float:
    """Average view occupancy of legitimate nodes (1.0 = all slots full)."""
    fractions = []
    for node in engine.legit_nodes():
        capacity = node.view.capacity
        fractions.append(len(node.view) / capacity if capacity else 0.0)
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def blacklisted_malicious_fraction(engine: Any) -> float:
    """Average fraction of the malicious population each legitimate node
    has blacklisted — how far proof dissemination has progressed."""
    malicious_ids = engine.malicious_ids
    if not malicious_ids:
        return 0.0
    fractions = []
    for node in engine.legit_nodes():
        blacklist = getattr(node, "blacklist", None)
        if blacklist is None:
            return 0.0
        count = sum(
            1 for mid in malicious_ids if blacklist.is_blacklisted(mid)
        )
        fractions.append(count / len(malicious_ids))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)
