"""Measurement utilities behind every figure of the paper.

* :mod:`~repro.metrics.links` — link composition of legitimate views
  (malicious fraction for Figs 3/5, non-swappable fraction for Fig 6);
* :mod:`~repro.metrics.degree` — indegree distributions (Fig 2);
* :mod:`~repro.metrics.graphstats` — overlay-graph statistics built on
  networkx (connectivity, clustering, eclipse detection);
* :mod:`~repro.metrics.detection` — clone-detection ratios (Fig 7);
* :mod:`~repro.metrics.collector` — ready-made probes for
  :class:`~repro.sim.observers.SeriesObserver`;
* :mod:`~repro.metrics.series` — small series/statistics helpers;
* :mod:`~repro.metrics.timeline` — attack-milestone reports distilled
  from the event trace.
"""

from repro.metrics.links import (
    malicious_link_fraction,
    non_swappable_fraction,
    view_fill_fraction,
    view_targets,
)
from repro.metrics.degree import indegree_counts, indegree_histogram
from repro.metrics.graphstats import (
    build_overlay_graph,
    eclipsed_fraction,
    largest_component_fraction,
    overlay_statistics,
)
from repro.metrics.detection import detection_ratio_by_age
from repro.metrics.timeline import AttackTimeline, attack_timeline
from repro.metrics.collector import standard_probes
from repro.metrics.series import Series, mean, percentile

__all__ = [
    "malicious_link_fraction",
    "non_swappable_fraction",
    "view_fill_fraction",
    "view_targets",
    "indegree_counts",
    "indegree_histogram",
    "build_overlay_graph",
    "eclipsed_fraction",
    "largest_component_fraction",
    "overlay_statistics",
    "detection_ratio_by_age",
    "AttackTimeline",
    "attack_timeline",
    "standard_probes",
    "Series",
    "mean",
    "percentile",
]
