"""Attack timelines distilled from a run's event trace.

Experiments and examples often want the narrative of a run — when the
attack started biting, when the first proof appeared, how long until
the whole party was blacklisted — rather than raw event lists.  This
module reduces an :class:`~repro.sim.trace.EventTrace` (plus engine
state) to those milestones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.experiments.report import format_table


@dataclass
class AttackTimeline:
    """Milestones of one adversarial run, in cycles."""

    first_violation_found: Optional[int]
    first_blacklisting: Optional[int]
    full_blacklist_cycle: Optional[int]
    violations_found: int
    blacklist_adoptions: int
    detections_by_kind: Dict[str, int]

    def rows(self) -> List[tuple]:
        """Table rows for rendering."""
        def show(value):
            return "-" if value is None else value

        rows = [
            ("first violation proven (cycle)", show(self.first_violation_found)),
            ("first node blacklisted (cycle)", show(self.first_blacklisting)),
            ("whole party blacklisted (cycle)", show(self.full_blacklist_cycle)),
            ("violations proven (total)", self.violations_found),
            ("blacklist adoptions (all nodes)", self.blacklist_adoptions),
        ]
        for kind, count in sorted(self.detections_by_kind.items()):
            rows.append((f"  detections: {kind}", count))
        return rows

    def render(self, title: str = "Attack timeline") -> str:
        """One aligned table."""
        return f"{title}\n" + format_table(["milestone", "value"], self.rows())


def attack_timeline(engine: Any) -> AttackTimeline:
    """Distill ``engine``'s trace into an :class:`AttackTimeline`.

    Works on any SecureCyclon run; on an honest run every milestone is
    ``None``/zero — which the no-false-positive tests rely on.
    """
    trace = engine.trace
    found = trace.of_kind("secure.violation_found")
    first_found = found[0].cycle if found else None

    blacklisted = trace.of_kind("secure.blacklisted")
    first_blacklisting = blacklisted[0].cycle if blacklisted else None

    by_kind: Dict[str, int] = {}
    for event in found:
        kind = event.detail.get("proof_kind", "unknown")
        by_kind[kind] = by_kind.get(kind, 0) + 1

    full_cycle = _full_blacklist_cycle(engine, blacklisted)
    return AttackTimeline(
        first_violation_found=first_found,
        first_blacklisting=first_blacklisting,
        full_blacklist_cycle=full_cycle,
        violations_found=len(found),
        blacklist_adoptions=len(blacklisted),
        detections_by_kind=by_kind,
    )


def _full_blacklist_cycle(engine: Any, blacklisted_events) -> Optional[int]:
    """The cycle by which every malicious node had been blacklisted by
    at least one honest node — None if that never happened (e.g. the
    adversary never violated, or the run is honest)."""
    malicious = set(engine.malicious_ids)
    if not malicious:
        return None
    remaining = set(malicious)
    for event in blacklisted_events:
        remaining.discard(event.detail.get("culprit"))
        if not remaining:
            return event.cycle
    return None
