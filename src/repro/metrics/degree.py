"""Indegree metrics (paper Fig 2).

Cyclon's signature property is that indegrees cluster tightly around
the configured outdegree ℓ.  These helpers count, for every node, how
many view entries across the whole overlay point at it.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple

from repro.metrics.links import view_targets


def indegree_counts(engine: Any) -> Dict[Any, int]:
    """Indegree of every alive node (0 for nodes nobody points at)."""
    counts: Counter = Counter()
    for node in engine.nodes.values():
        for target in view_targets(node):
            counts[target] += 1
    return {
        node_id: counts.get(node_id, 0) for node_id in engine.nodes
    }


def indegree_histogram(engine: Any) -> List[Tuple[int, int]]:
    """``(indegree, node count)`` pairs, sorted by indegree (Fig 2)."""
    counts = indegree_counts(engine)
    histogram: Counter = Counter(counts.values())
    return sorted(histogram.items())


def indegree_statistics(engine: Any) -> Dict[str, float]:
    """Summary statistics of the indegree distribution."""
    values = list(indegree_counts(engine).values())
    if not values:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "stddev": 0.0}
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return {
        "min": float(min(values)),
        "max": float(max(values)),
        "mean": mean,
        "stddev": variance**0.5,
    }
