"""Small series and statistics helpers shared by experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile by linear interpolation."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


@dataclass
class Series:
    """A labelled (x, y) series, the unit every figure is made of."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def max_y(self) -> float:
        return max(self.ys) if self.points else 0.0

    def min_y(self) -> float:
        return min(self.ys) if self.points else 0.0

    def final_y(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def y_at(self, x: float) -> float:
        """The y value at the nearest sampled x."""
        if not self.points:
            return 0.0
        nearest = min(self.points, key=lambda point: abs(point[0] - x))
        return nearest[1]

    def window_mean(self, x_lo: float, x_hi: float) -> float:
        """Mean of y over points with x in [x_lo, x_hi]."""
        selected = [y for x, y in self.points if x_lo <= x <= x_hi]
        return mean(selected)
