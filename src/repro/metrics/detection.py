"""Clone-detection analysis (paper Fig 7).

The Fig 7 experiment runs cloning attackers with enforcement disabled,
collects every :class:`~repro.adversary.cloning.CloneEvent`, and joins
them against the ``secure.violation_found`` trace events emitted by
legitimate nodes.  A clone event counts as *detected* if any legitimate
node ever produced a violation proof for the cloned descriptor's
identity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.adversary.cloning import CloneEvent
from repro.core.descriptor import DescriptorId


def detected_identities(trace) -> Set[DescriptorId]:
    """Identities referenced by any locally discovered violation."""
    identities: Set[DescriptorId] = set()
    for event in trace.of_kind("secure.violation_found"):
        identity = event.detail.get("identity")
        if identity is not None:
            identities.add(identity)
    return identities


def detection_ratio_by_age(
    clone_events: Iterable[CloneEvent],
    detected: Set[DescriptorId],
    age_buckets: Iterable[int],
) -> List[Tuple[int, float, int]]:
    """Per-age detection ratios.

    Returns ``(age, detection_ratio, event_count)`` rows for every
    bucket in ``age_buckets``; buckets with no events report a ratio of
    0.0 with count 0, so the Fig 7 x-axis stays complete.
    """
    events_by_age: Dict[int, List[CloneEvent]] = {}
    for event in clone_events:
        events_by_age.setdefault(event.age_at_duplication, []).append(event)

    rows = []
    for age in age_buckets:
        events = events_by_age.get(age, [])
        if not events:
            rows.append((age, 0.0, 0))
            continue
        hits = sum(1 for event in events if event.identity in detected)
        rows.append((age, hits / len(events), len(events)))
    return rows


def overall_detection_ratio(
    clone_events: Iterable[CloneEvent], detected: Set[DescriptorId]
) -> float:
    """Detection ratio over all ages combined."""
    events = list(clone_events)
    if not events:
        return 0.0
    hits = sum(1 for event in events if event.identity in detected)
    return hits / len(events)
