"""Overlay-graph statistics built on networkx.

The paper motivates peer sampling with the random-graph-like robustness
of the overlays it produces (§I, §II-B).  These helpers turn a running
engine's views into a directed graph and measure connectivity,
clustering and eclipse status.
"""

from __future__ import annotations

from typing import Any, Dict

import networkx as nx

from repro.metrics.links import view_targets


def build_overlay_graph(engine: Any, legit_only: bool = False) -> nx.DiGraph:
    """The overlay as a directed graph (edge = view entry)."""
    graph = nx.DiGraph()
    malicious_ids = engine.malicious_ids if legit_only else set()
    for node_id, node in engine.nodes.items():
        if legit_only and node_id in malicious_ids:
            continue
        graph.add_node(node_id)
        for target in view_targets(node):
            if legit_only and target in malicious_ids:
                continue
            graph.add_edge(node_id, target)
    return graph


def largest_component_fraction(engine: Any, legit_only: bool = True) -> float:
    """Fraction of (legitimate) nodes in the largest weakly connected
    component — 1.0 means the overlay survived in one piece."""
    graph = build_overlay_graph(engine, legit_only=legit_only)
    if graph.number_of_nodes() == 0:
        return 0.0
    largest = max(nx.weakly_connected_components(graph), key=len)
    return len(largest) / graph.number_of_nodes()


def eclipsed_fraction(engine: Any) -> float:
    """Fraction of legitimate nodes whose every out-link is malicious.

    This is the paper's explanation for the residual malicious-link
    plateau at high swap lengths (Fig 5 bottom-left): eclipsed nodes
    cannot receive proof floods over legitimate links.
    """
    malicious_ids = engine.malicious_ids
    legit = engine.legit_nodes()
    if not legit:
        return 0.0
    eclipsed = 0
    for node in legit:
        targets = view_targets(node)
        if targets and all(target in malicious_ids for target in targets):
            eclipsed += 1
    return eclipsed / len(legit)


def overlay_statistics(engine: Any) -> Dict[str, float]:
    """Clustering, degree and connectivity summary of the live overlay."""
    graph = build_overlay_graph(engine)
    n = graph.number_of_nodes()
    if n == 0:
        return {
            "nodes": 0.0,
            "edges": 0.0,
            "clustering": 0.0,
            "largest_component": 0.0,
            "mean_shortest_path_sample": 0.0,
        }
    undirected = graph.to_undirected()
    largest = max(nx.weakly_connected_components(graph), key=len)
    # Average clustering on the undirected projection, as in the Cyclon
    # paper's comparison against random graphs.
    clustering = nx.average_clustering(undirected)
    # Exact all-pairs shortest paths is O(n^2); sample a few sources.
    path_lengths = []
    sample = list(largest)[: min(20, len(largest))]
    subgraph = undirected.subgraph(largest)
    for source in sample:
        lengths = nx.single_source_shortest_path_length(subgraph, source)
        if len(lengths) > 1:
            path_lengths.append(
                sum(lengths.values()) / (len(lengths) - 1)
            )
    return {
        "nodes": float(n),
        "edges": float(graph.number_of_edges()),
        "clustering": clustering,
        "largest_component": len(largest) / n,
        "mean_shortest_path_sample": (
            sum(path_lengths) / len(path_lengths) if path_lengths else 0.0
        ),
    }
